package corpus

import (
	"strings"

	"repro/internal/kb"
	"repro/internal/nlp/lexicon"
	"repro/internal/stats"
)

// renderer turns statement decisions into English sentences that the NLP
// front end can parse and the extractor can interpret. Template coverage:
// all three Figure-4 patterns, negation styles including double negation
// (Figure 5), broad-copula variants (captured only by pattern versions
// 1-2), and the non-intrinsic / non-coreferential distractors the checks
// of Section 4 must filter.
type renderer struct {
	base *kb.KB
	rng  *stats.RNG
	lex  *lexicon.Lexicon
}

func newRenderer(base *kb.KB, rng *stats.RNG) *renderer {
	return &renderer{base: base, rng: rng, lex: lexicon.Default()}
}

// fillerAdjectives are used for conjunction partners and noise; they are
// deliberately disjoint from every evaluation property so tracked counters
// stay interpretable.
var fillerAdjectives = []string{"nice", "lovely", "charming", "famous",
	"wonderful", "great", "scenic", "modern", "vibrant", "clean"}

var aspectNouns = []string{"parking", "traffic", "nightlife", "beginners",
	"families", "tourists", "kids", "summer", "winter", "hiking", "swimming"}

var objectiveAdjs = []string{"southern", "northern", "eastern", "western",
	"coastal", "urban", "rural"}

// subject is a realised entity noun phrase.
type subject struct {
	np     string // e.g. "Chicago", "The kitten", "Kittens"
	plural bool
}

// realizeSubject picks a surface form for the entity. Proper names stay
// as-is; common nouns alternate between "The <name>" and the bare plural.
func (r *renderer) realizeSubject(e *kb.Entity) subject {
	if e.Proper {
		return subject{np: e.Name}
	}
	if r.rng.Bernoulli(0.5) {
		return subject{np: kb.Pluralize(e.Name), plural: true}
	}
	return subject{np: "The " + e.Name}
}

func (s subject) be() string {
	if s.plural {
		return "are"
	}
	return "is"
}

func (s subject) beNot() string {
	if s.plural {
		return "aren't"
	}
	return "isn't"
}

func (s subject) seems() string {
	if s.plural {
		return "seem"
	}
	return "seems"
}

func (s subject) doesNotSeem() string {
	if s.plural {
		return "don't seem"
	}
	return "doesn't seem"
}

func article(word string) string {
	switch word[0] {
	case 'a', 'e', 'i', 'o', 'u':
		return "an"
	}
	return "a"
}

func capitalise(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// evidenceSentence renders one statement decision.
func (r *renderer) evidenceSentence(spec *Spec, e *kb.Entity, positive bool, cfg Config) string {
	s := r.realizeSubject(e)
	prop := spec.Property
	typN := spec.Type
	if s.plural {
		typN = kb.Pluralize(typN)
	}

	if positive {
		if r.rng.Bernoulli(cfg.DoubleNegFrac) {
			// Double negation: "I don't think that kittens are never cute."
			return capitalise("I don't think that " + s.np + " " + s.be() + " never " + prop + ".")
		}
		if r.rng.Bernoulli(cfg.BroadCopulaFrac) {
			return capitalise(s.np + " " + s.seems() + " " + prop + ".")
		}
		switch r.rng.Intn(6) {
		case 0:
			return capitalise(s.np + " " + s.be() + " " + prop + ".")
		case 1:
			if s.plural {
				return capitalise(s.np + " are " + prop + " " + typN + ".")
			}
			if e.Proper && r.rng.Bernoulli(0.3) {
				// Appositive rename: "Chicago, a big city, is lovely."
				filler := fillerAdjectives[r.rng.Intn(len(fillerAdjectives))]
				return capitalise(s.np + ", " + article(prop) + " " + prop + " " + typN + ", is " + filler + ".")
			}
			return capitalise(s.np + " is " + article(prop) + " " + prop + " " + typN + ".")
		case 2:
			return capitalise("I think that " + s.np + " " + s.be() + " " + prop + ".")
		case 3:
			return capitalise("Everyone agrees that " + s.np + " " + s.be() + " " + prop + ".")
		case 4:
			filler := fillerAdjectives[r.rng.Intn(len(fillerAdjectives))]
			return capitalise(s.np + " " + s.be() + " " + prop + " and " + filler + ".")
		default:
			// "definitely" is not a degree adverb, so the extracted
			// property stays the bare adjective.
			return capitalise(s.np + " " + s.be() + " definitely " + prop + ".")
		}
	}

	if r.rng.Bernoulli(cfg.BroadCopulaFrac) {
		return capitalise(s.np + " " + s.doesNotSeem() + " " + prop + ".")
	}
	switch r.rng.Intn(5) {
	case 0:
		return capitalise(s.np + " " + s.be() + " not " + prop + ".")
	case 1:
		return capitalise(s.np + " " + s.beNot() + " " + prop + ".")
	case 2:
		if s.plural {
			return capitalise(s.np + " are not " + prop + " " + typN + ".")
		}
		return capitalise(s.np + " is not " + article(prop) + " " + prop + " " + typN + ".")
	case 3:
		return capitalise("I don't think that " + s.np + " " + s.be() + " " + prop + ".")
	default:
		return capitalise(s.np + " " + s.be() + " never " + prop + ".")
	}
}

// antonymSentence voices an opinion through the property's antonym:
// a positive antonym assertion ("Palo Alto is small") for negated=false,
// or a negated antonym assertion ("Sacramento is not small") for
// negated=true. Returns "" when the property has no registered antonym.
func (r *renderer) antonymSentence(spec *Spec, e *kb.Entity, negated bool) string {
	antos := r.lex.Antonyms(spec.Property)
	if len(antos) == 0 {
		return ""
	}
	anto := antos[r.rng.Intn(len(antos))]
	s := r.realizeSubject(e)
	if negated {
		switch r.rng.Intn(2) {
		case 0:
			return capitalise(s.np + " " + s.be() + " not " + anto + ".")
		default:
			return capitalise(s.np + " " + s.beNot() + " " + anto + ".")
		}
	}
	switch r.rng.Intn(3) {
	case 0:
		return capitalise(s.np + " " + s.be() + " " + anto + ".")
	case 1:
		typN := spec.Type
		if s.plural {
			typN = kb.Pluralize(typN)
			return capitalise(s.np + " are " + anto + " " + typN + ".")
		}
		return capitalise(s.np + " is " + article(anto) + " " + anto + " " + typN + ".")
	default:
		return capitalise("I think that " + s.np + " " + s.be() + " " + anto + ".")
	}
}

// noiseSentence renders a sentence that a precise extractor must NOT count
// as intrinsic evidence. A share of them look like statements about
// tracked properties ("X is big for a suburb") with polarity unrelated to
// the latent truth — the noise that separates pattern versions 1-2 from
// 3-4 in Table 4.
func (r *renderer) noiseSentence(specs []Spec, cfg Config) string {
	spec := &specs[r.rng.Intn(len(specs))]
	ids := r.base.OfType(spec.Type)
	if len(ids) == 0 {
		return "The weather is nice."
	}
	e := r.base.Get(ids[r.rng.Intn(len(ids))])
	s := r.realizeSubject(e)

	if r.rng.Bernoulli(cfg.NonIntrinsicFrac) {
		// Aspect statement (PP constriction). Half use the tracked
		// property with random polarity — misleading for negation-aware
		// but check-less extraction (versions 1-2).
		adj := fillerAdjectives[r.rng.Intn(len(fillerAdjectives))]
		if r.rng.Bernoulli(0.5) {
			adj = spec.Property
		}
		noun := aspectNouns[r.rng.Intn(len(aspectNouns))]
		if r.rng.Bernoulli(0.3) {
			return capitalise(s.np + " " + s.be() + " not " + adj + " for " + noun + ".")
		}
		return capitalise(s.np + " " + s.be() + " " + adj + " for " + noun + ".")
	}

	switch r.rng.Intn(4) {
	case 0:
		// Non-coreferential attributive modifier ("Southern France...").
		obj := objectiveAdjs[r.rng.Intn(len(objectiveAdjs))]
		filler := fillerAdjectives[r.rng.Intn(len(fillerAdjectives))]
		if e.Proper {
			return capitalise(obj + " " + e.Name + " is " + filler + ".")
		}
		return capitalise("The " + obj + " " + e.Name + " is " + filler + ".")
	case 1:
		return capitalise("We visited " + s.np + " last year.")
	case 2:
		return capitalise("I love " + s.np + ".")
	default:
		noun := aspectNouns[r.rng.Intn(len(aspectNouns))]
		return capitalise(s.np + " " + s.be() + " there for " + noun + ".")
	}
}
