package corpus

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// WriteJSONL serialises documents one JSON object per line — the on-disk
// snapshot format shared by cmd/corpusgen and cmd/surveyor.
func WriteJSONL(w io.Writer, docs []Document) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range docs {
		if err := enc.Encode(&docs[i]); err != nil {
			return fmt.Errorf("corpus: write document %d: %w", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("corpus: flush documents: %w", err)
	}
	return nil
}

// DefaultMaxLineBytes is the per-line size cap of JSONL reading: one
// document on one line, at most 4 MiB. Real crawls contain hostile pages;
// the cap bounds the reader's memory no matter what the input holds.
const DefaultMaxLineBytes = 1 << 22

// LineError locates a corpus read failure on its input line. It wraps the
// underlying cause, so errors.Is(err, bufio.ErrTooLong) identifies an
// oversized line and json.SyntaxError surfaces through errors.As.
type LineError struct {
	Line int64 // 1-based physical line number
	Err  error
}

// Error implements error.
func (e *LineError) Error() string { return fmt.Sprintf("corpus: line %d: %v", e.Line, e.Err) }

// Unwrap exposes the cause.
func (e *LineError) Unwrap() error { return e.Err }

// IteratorConfig controls JSONL iteration.
type IteratorConfig struct {
	// Lenient skips and counts malformed or oversized lines instead of
	// failing the whole read — the mode for hostile real-world corpora.
	// I/O errors from the underlying reader are fatal in both modes.
	Lenient bool
	// MaxLineBytes caps one line (default DefaultMaxLineBytes). Longer
	// lines are an error (strict) or skipped and counted (lenient); memory
	// stays bounded by the cap either way.
	MaxLineBytes int
}

// IteratorStats counts what an Iterator has consumed so far.
type IteratorStats struct {
	// Lines is the number of physical input lines consumed, including
	// blank and skipped ones.
	Lines int64
	// Docs is the number of documents successfully decoded.
	Docs int64
	// Malformed counts lines skipped because they were not valid document
	// JSON (lenient mode only).
	Malformed int64
	// Oversized counts lines skipped because they exceeded MaxLineBytes
	// (lenient mode only).
	Oversized int64
}

// Skipped is the total number of lines dropped by lenient mode.
func (s IteratorStats) Skipped() int64 { return s.Malformed + s.Oversized }

// Iterator streams documents out of a JSONL corpus one at a time in
// bounded memory — the ingestion path for corpora larger than RAM. Usage
// follows the bufio.Scanner idiom:
//
//	it := corpus.NewIterator(r, corpus.IteratorConfig{Lenient: true})
//	for it.Next() {
//		use(it.Doc())
//	}
//	if err := it.Err(); err != nil { ... }
type Iterator struct {
	br   *bufio.Reader
	cfg  IteratorConfig
	doc  Document
	st   IteratorStats
	err  error
	buf  []byte
	done bool
}

// NewIterator returns an Iterator over r.
func NewIterator(r io.Reader, cfg IteratorConfig) *Iterator {
	if cfg.MaxLineBytes <= 0 {
		cfg.MaxLineBytes = DefaultMaxLineBytes
	}
	return &Iterator{br: bufio.NewReaderSize(r, 64<<10), cfg: cfg}
}

// Next advances to the next document. It returns false at the end of the
// input or on a fatal error — check Err to tell the two apart.
func (it *Iterator) Next() bool {
	if it.done {
		return false
	}
	for {
		line, tooLong, rerr := it.readLine()
		atEOF := errors.Is(rerr, io.EOF)
		if rerr != nil && !atEOF {
			it.done = true
			it.err = &LineError{Line: it.st.Lines + 1, Err: rerr}
			return false
		}
		if tooLong {
			it.st.Lines++
			if !it.cfg.Lenient {
				it.done = true
				it.err = &LineError{Line: it.st.Lines, Err: bufio.ErrTooLong}
				return false
			}
			it.st.Oversized++
			if atEOF {
				it.done = true
				return false
			}
			continue
		}
		if len(line) == 0 {
			if atEOF {
				it.done = true
				return false
			}
			it.st.Lines++ // blank line
			continue
		}
		it.st.Lines++
		var d Document
		if err := json.Unmarshal(line, &d); err != nil {
			if !it.cfg.Lenient {
				it.done = true
				it.err = &LineError{Line: it.st.Lines, Err: err}
				return false
			}
			it.st.Malformed++
			if atEOF {
				it.done = true
				return false
			}
			continue
		}
		it.doc = d
		it.st.Docs++
		if atEOF {
			it.done = true
		}
		return true
	}
}

// Doc returns the document decoded by the last successful Next.
func (it *Iterator) Doc() Document { return it.doc }

// Err returns the fatal error that stopped iteration, nil after a clean
// end of input.
func (it *Iterator) Err() error { return it.err }

// Stats returns the running consumption counters.
func (it *Iterator) Stats() IteratorStats { return it.st }

// readLine reads one physical line, stripping the trailing newline (and a
// preceding carriage return). A line longer than MaxLineBytes is consumed
// to its end — holding at most MaxLineBytes plus one bufio buffer in
// memory — and reported as tooLong. rerr is io.EOF on an unterminated
// final line or when the input is exhausted.
func (it *Iterator) readLine() (line []byte, tooLong bool, rerr error) {
	buf := it.buf[:0]
	for {
		frag, err := it.br.ReadSlice('\n')
		if len(buf) <= it.cfg.MaxLineBytes {
			buf = append(buf, frag...)
		}
		if errors.Is(err, bufio.ErrBufferFull) {
			if len(buf) > it.cfg.MaxLineBytes {
				derr := it.discardLine()
				it.buf = buf[:0]
				if errors.Is(derr, io.EOF) {
					derr = nil // the oversized line was the last one
				}
				return nil, true, derr
			}
			continue
		}
		it.buf = buf
		line = trimEOL(buf)
		if len(line) > it.cfg.MaxLineBytes {
			return nil, true, err
		}
		return line, false, err
	}
}

// discardLine consumes input up to and including the next newline.
func (it *Iterator) discardLine() error {
	for {
		_, err := it.br.ReadSlice('\n')
		if errors.Is(err, bufio.ErrBufferFull) {
			continue
		}
		return err
	}
}

// trimEOL strips one trailing "\n" or "\r\n".
func trimEOL(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		b = b[:n-1]
		if n := len(b); n > 0 && b[n-1] == '\r' {
			b = b[:n-1]
		}
	}
	return b
}

// ReadJSONL reads a snapshot written by WriteJSONL into memory. Lines that
// fail to parse — or exceed DefaultMaxLineBytes — abort with a *LineError
// naming the offending line. Use an Iterator directly for bounded-memory
// streaming or lenient skipping.
func ReadJSONL(r io.Reader) ([]Document, error) {
	it := NewIterator(r, IteratorConfig{})
	var docs []Document
	for it.Next() {
		docs = append(docs, it.Doc())
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	return docs, nil
}
