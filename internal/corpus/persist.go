package corpus

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSONL serialises documents one JSON object per line — the on-disk
// snapshot format shared by cmd/corpusgen and cmd/surveyor.
func WriteJSONL(w io.Writer, docs []Document) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range docs {
		if err := enc.Encode(&docs[i]); err != nil {
			return fmt.Errorf("corpus: write document %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL reads a snapshot written by WriteJSONL. Lines that fail to
// parse abort with an error naming the line.
func ReadJSONL(r io.Reader) ([]Document, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<22)
	var docs []Document
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var d Document
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			return nil, fmt.Errorf("corpus: line %d: %w", line, err)
		}
		docs = append(docs, d)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("corpus: read: %w", err)
	}
	return docs, nil
}
