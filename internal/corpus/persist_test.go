package corpus

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// chunkReader delivers at most n bytes per Read, forcing the iterator's
// line assembly through its fragmentation paths.
type chunkReader struct {
	r io.Reader
	n int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if len(p) > c.n {
		p = p[:c.n]
	}
	return c.r.Read(p)
}

func sampleDocs() []Document {
	return []Document{
		{URL: "http://a/1", Domain: "a", Author: 7, Text: "Kittens are cute."},
		{URL: "http://b/2", Domain: "b", Author: 9, Text: "Spiders are not cute.\nSnakes are dangerous."},
		{URL: "http://c/3", Domain: "c", Text: "Paris is beautiful."},
	}
}

func TestIteratorStrictMatchesReadJSONL(t *testing.T) {
	var buf bytes.Buffer
	docs := sampleDocs()
	if err := WriteJSONL(&buf, docs); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	want, err := ReadJSONL(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	// Byte-at-a-time delivery must not change what the iterator decodes.
	it := NewIterator(&chunkReader{r: bytes.NewReader(data), n: 1}, IteratorConfig{})
	var got []Document
	for it.Next() {
		got = append(got, it.Doc())
	}
	if err := it.Err(); err != nil {
		t.Fatalf("iterator failed: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d documents, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("doc %d: %+v vs %+v", i, got[i], want[i])
		}
	}
	if st := it.Stats(); st.Docs != int64(len(want)) || st.Skipped() != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestIteratorStrictOversizedLine(t *testing.T) {
	input := `{"text":"ok"}` + "\n" + strings.Repeat("x", 200) + "\n" + `{"text":"after"}` + "\n"
	it := NewIterator(strings.NewReader(input), IteratorConfig{MaxLineBytes: 64})
	if !it.Next() {
		t.Fatalf("first document rejected: %v", it.Err())
	}
	if it.Next() {
		t.Fatal("oversized line decoded")
	}
	err := it.Err()
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("err = %v, want bufio.ErrTooLong", err)
	}
	var le *LineError
	if !errors.As(err, &le) || le.Line != 2 {
		t.Fatalf("err = %v, want *LineError on line 2", err)
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error %q does not name the line", err)
	}
}

func TestReadJSONLSurfacesOversizedLine(t *testing.T) {
	// The >MaxLineBytes document must fail with the line number and
	// bufio.ErrTooLong, not a generic read error.
	var buf bytes.Buffer
	docs := []Document{
		{URL: "u1", Text: "small"},
		{URL: "u2", Text: strings.Repeat("y", DefaultMaxLineBytes+1)},
	}
	if err := WriteJSONL(&buf, docs); err != nil {
		t.Fatal(err)
	}
	_, err := ReadJSONL(&buf)
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("err = %v, want bufio.ErrTooLong", err)
	}
	var le *LineError
	if !errors.As(err, &le) || le.Line != 2 {
		t.Fatalf("err = %v, want *LineError on line 2", err)
	}
}

func TestIteratorLenientSkipsAndCounts(t *testing.T) {
	var valid bytes.Buffer
	docs := sampleDocs()
	if err := WriteJSONL(&valid, docs); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(valid.String(), "\n")
	input := "not json at all\n" + lines[0] + "\n" + // malformed + valid + blank
		strings.Repeat("z", 500) + "\n" + // oversized
		lines[1] + "[1,2,3\n" + lines[2] // malformed between valid docs

	it := NewIterator(strings.NewReader(input), IteratorConfig{Lenient: true, MaxLineBytes: 256})
	var got []Document
	for it.Next() {
		got = append(got, it.Doc())
	}
	if err := it.Err(); err != nil {
		t.Fatalf("lenient iteration failed: %v", err)
	}
	if len(got) != len(docs) {
		t.Fatalf("decoded %d documents, want %d", len(got), len(docs))
	}
	for i := range docs {
		if got[i] != docs[i] {
			t.Errorf("doc %d: %+v vs %+v", i, got[i], docs[i])
		}
	}
	st := it.Stats()
	if st.Malformed != 2 || st.Oversized != 1 || st.Skipped() != 3 {
		t.Errorf("stats = %+v, want 2 malformed + 1 oversized", st)
	}
	if st.Docs != int64(len(docs)) {
		t.Errorf("stats.Docs = %d, want %d", st.Docs, len(docs))
	}
}

func TestIteratorLenientOversizedAcrossBuffer(t *testing.T) {
	// An oversized line much larger than the bufio buffer must be skipped
	// whole, not resynchronised mid-line into phantom documents.
	big := strings.Repeat(`{"text":"x"}`, 20<<10) // ~240 KiB on one line
	input := big + "\n" + `{"text":"ok"}` + "\n"
	it := NewIterator(&chunkReader{r: strings.NewReader(input), n: 997},
		IteratorConfig{Lenient: true, MaxLineBytes: 1024})
	var got []Document
	for it.Next() {
		got = append(got, it.Doc())
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Text != "ok" {
		t.Fatalf("decoded %+v, want the single trailing document", got)
	}
	if st := it.Stats(); st.Oversized != 1 {
		t.Errorf("stats = %+v, want one oversized line", st)
	}
}

func TestIteratorUnterminatedFinalLine(t *testing.T) {
	input := `{"text":"a"}` + "\n" + `{"text":"b"}` // no trailing newline
	it := NewIterator(strings.NewReader(input), IteratorConfig{})
	var texts []string
	for it.Next() {
		texts = append(texts, it.Doc().Text)
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if len(texts) != 2 || texts[1] != "b" {
		t.Fatalf("decoded %v, want both documents", texts)
	}
}

func TestIteratorCRLF(t *testing.T) {
	input := "{\"text\":\"a\"}\r\n{\"text\":\"b\"}\r\n"
	it := NewIterator(strings.NewReader(input), IteratorConfig{})
	n := 0
	for it.Next() {
		n++
	}
	if err := it.Err(); err != nil {
		t.Fatalf("CRLF input rejected: %v", err)
	}
	if n != 2 {
		t.Fatalf("decoded %d documents, want 2", n)
	}
}

func TestIteratorPropagatesReadError(t *testing.T) {
	boom := errors.New("disk on fire")
	for _, lenient := range []bool{false, true} {
		it := NewIterator(io.MultiReader(strings.NewReader(`{"text":"a"}`+"\n"), &failAfter{err: boom}),
			IteratorConfig{Lenient: lenient})
		if !it.Next() {
			t.Fatalf("lenient=%v: first document rejected: %v", lenient, it.Err())
		}
		if it.Next() {
			t.Fatalf("lenient=%v: decoded past a read error", lenient)
		}
		if !errors.Is(it.Err(), boom) {
			t.Fatalf("lenient=%v: err = %v, want the read error", lenient, it.Err())
		}
	}
}

type failAfter struct{ err error }

func (f *failAfter) Read([]byte) (int, error) { return 0, f.err }
