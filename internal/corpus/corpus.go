// Package corpus generates the synthetic web snapshot the reproduction
// runs on — the substitute for the paper's 40 TB annotated crawl.
//
// The generator simulates content authoring exactly along the paper's user
// model (Figure 7): each (type, property) combination has a latent
// dominant opinion per entity, an agreement probability pA*, and
// polarity-dependent emission rates; every emitted opinion is rendered as
// a real English sentence (covering all three extraction patterns,
// negations including double negation, broad-copula variants, and
// non-intrinsic distractors), so the full NLP pipeline — not just the
// model — is exercised end to end, and the latent truth is known for
// every experiment.
package corpus

import (
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/kb"
	"repro/internal/stats"
)

// Document is one web page, assumed to be written by a single author (the
// paper's independence assumption: two random pages share an author with
// negligible probability).
type Document struct {
	URL    string
	Domain string // top-level domain, e.g. "com", "cn" — input restriction handle
	Author int
	Text   string
}

// Spec defines the latent ground truth and authoring behaviour for one
// (type, property) combination.
type Spec struct {
	Type     string
	Property string // a bare adjective ("big"); degree adverbs are added in rendering

	// PA is the latent agreement probability (fraction of the population
	// sharing the dominant opinion).
	PA float64
	// NpPlus / NpMinus are the aggregate emission rates n·p+S and n·p−S:
	// the expected number of positive (negative) statements contributed by
	// the whole author population for an entity everyone holds a positive
	// (negative) opinion about.
	NpPlus  float64
	NpMinus float64
	// Truth returns the latent dominant opinion for an entity, optionally
	// depending on the authoring region (domain). Must be deterministic.
	// May be nil when PosFraction is set (then Truth is PosFraction ≥ ½).
	Truth func(e *kb.Entity, domain string) bool
	// PosFraction optionally refines the latent opinion distribution to a
	// per-entity positive fraction (e.g. a sigmoid in an objective
	// attribute): kittens are cute to 98% of the population, tigers to
	// 60% — the per-entity agreement spread visible in Figure 10. When
	// nil, the fraction is the two-level pA / 1−pA of the paper's model.
	PosFraction func(e *kb.Entity, domain string) float64
	// PopularityWeighting scales emission by the entity's "prominence"
	// attribute, introducing per-entity visibility differences the model
	// does NOT assume — a deliberate robustness stressor and the source of
	// the long-tail shapes of Figure 9.
	PopularityWeighting bool
}

// LatentPosFraction returns the latent fraction of the population holding
// a positive opinion on the entity. The crowd simulator samples workers
// from it, and the generator emits statements proportionally to it.
func (s *Spec) LatentPosFraction(e *kb.Entity, domain string) float64 {
	if s.PosFraction != nil {
		f := s.PosFraction(e, domain)
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		return f
	}
	if s.latentTruth(e, domain) {
		return s.PA
	}
	return 1 - s.PA
}

// latentTruth resolves the dominant opinion: the explicit Truth function
// when given, otherwise the majority side of PosFraction.
func (s *Spec) latentTruth(e *kb.Entity, domain string) bool {
	if s.Truth != nil {
		return s.Truth(e, domain)
	}
	return s.PosFraction(e, domain) >= 0.5
}

// LatentTruth is the exported form of the dominant-opinion resolution.
func (s *Spec) LatentTruth(e *kb.Entity, domain string) bool {
	return s.latentTruth(e, domain)
}

// DomainShare is one authoring region with its share of the author
// population.
type DomainShare struct {
	Domain string
	Share  float64
}

// Config controls snapshot generation.
type Config struct {
	Seed uint64
	// Scale multiplies every emission rate; 1 uses the specs as given.
	Scale float64
	// Domains lists the authoring regions. Empty means a single "com".
	Domains []DomainShare
	// NoiseRatio is the number of noise/distractor sentences generated per
	// evidence sentence (default 0.5).
	NoiseRatio float64
	// BroadCopulaFrac is the fraction of evidence sentences rendered with
	// a broad copula (seems/looks/...) instead of "to be" — signal that
	// only pattern versions 1-2 capture (default 0.08).
	BroadCopulaFrac float64
	// DoubleNegFrac is the fraction of POSITIVE statements rendered as a
	// double negation (default 0.02).
	DoubleNegFrac float64
	// NonIntrinsicFrac is the fraction of noise sentences that are aspect
	// statements ("X is bad for parking") which checks must filter
	// (default 0.4, within the noise budget).
	NonIntrinsicFrac float64
	// AntonymFrac enables antonym-style authoring (off by default): this
	// fraction of negative opinions is voiced as a positive assertion of
	// an antonym ("Palo Alto is small" instead of "Palo Alto is not
	// big"), and entities in the controversial middle band additionally
	// attract "X is not <antonym>" statements — the linguistic reality
	// behind the paper's Section-4 decision not to fold antonyms into
	// negations. Used by the antonym ablation.
	AntonymFrac float64
	// AuthorCompression models the gap between the authoring population
	// and the survey population (Section 1: "users with one specific
	// opinion are more likely to express themselves"): the authors'
	// positive-opinion fraction is pulled toward ½ by this factor
	// relative to the latent population fraction. 1 means authors mirror
	// the population exactly; the default 0.8 leaves a small noise floor
	// of contrarian authors, reproducing the paper's observation that
	// even entities with a clear negative dominant opinion keep
	// collecting stray positive statements (Figure 3).
	AuthorCompression float64
	// MinSentencesPerDoc/MaxSentencesPerDoc bound document length.
	MinSentencesPerDoc int
	MaxSentencesPerDoc int
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if len(c.Domains) == 0 {
		c.Domains = []DomainShare{{Domain: "com", Share: 1}}
	}
	if c.NoiseRatio == 0 {
		c.NoiseRatio = 0.5
	}
	if c.BroadCopulaFrac == 0 {
		c.BroadCopulaFrac = 0.08
	}
	if c.DoubleNegFrac == 0 {
		c.DoubleNegFrac = 0.02
	}
	if c.NonIntrinsicFrac == 0 {
		c.NonIntrinsicFrac = 0.4
	}
	if c.AuthorCompression == 0 {
		c.AuthorCompression = 0.8
	}
	if c.MinSentencesPerDoc == 0 {
		c.MinSentencesPerDoc = 1
	}
	if c.MaxSentencesPerDoc == 0 {
		c.MaxSentencesPerDoc = 4
	}
	return c
}

// TruthKey identifies a latent (entity, property) opinion.
type TruthKey struct {
	Entity   kb.EntityID
	Property string
}

// Snapshot is a generated corpus plus its latent ground truth.
type Snapshot struct {
	Documents []Document
	Specs     []Spec
	// Truth is the latent dominant opinion per (entity, property),
	// aggregated across domains by author share.
	Truth map[TruthKey]bool
	// Statements counts the evidence sentences that were rendered (before
	// any extraction loss).
	Statements int
}

// SpecFor returns the spec covering the (type, property) pair, if any.
func (s *Snapshot) SpecFor(typ, property string) (*Spec, bool) {
	for i := range s.Specs {
		if s.Specs[i].Type == typ && s.Specs[i].Property == property {
			return &s.Specs[i], true
		}
	}
	return nil, false
}

// DocumentsInDomain filters the snapshot by top-level domain — the paper's
// mechanism for region-specific results.
func (s *Snapshot) DocumentsInDomain(domain string) []Document {
	var out []Document
	for _, d := range s.Documents {
		if d.Domain == domain {
			out = append(out, d)
		}
	}
	return out
}

// HashTruth builds a deterministic pseudo-random truth function with the
// given positive rate, for properties with no natural objective anchor.
func HashTruth(property string, rate float64) func(e *kb.Entity, domain string) bool {
	return func(e *kb.Entity, domain string) bool {
		h := fnv.New64a()
		h.Write([]byte(e.Name))
		h.Write([]byte{0})
		h.Write([]byte(property))
		return float64(h.Sum64()%1_000_000)/1_000_000 < rate
	}
}

// AttrTruth builds a truth function thresholding an objective attribute:
// Truth(e) = e.Attr(attr) >= threshold.
func AttrTruth(attr string, threshold float64) func(e *kb.Entity, domain string) bool {
	return func(e *kb.Entity, domain string) bool {
		return e.Attr(attr, 0) >= threshold
	}
}

// AttrBelowTruth is AttrTruth with the comparison inverted.
func AttrBelowTruth(attr string, threshold float64) func(e *kb.Entity, domain string) bool {
	return func(e *kb.Entity, domain string) bool {
		return e.Attr(attr, 0) < threshold
	}
}

// SigmoidFraction builds a per-entity positive-opinion fraction from an
// objective attribute: ½ at the threshold, approaching maxAgree for
// attribute values far above it and 1−maxAgree far below. width is the
// attribute distance over which opinion shifts.
func SigmoidFraction(attr string, threshold, width, maxAgree float64) func(e *kb.Entity, domain string) float64 {
	return func(e *kb.Entity, domain string) float64 {
		x := (e.Attr(attr, 0) - threshold) / width
		return (1 - maxAgree) + (2*maxAgree-1)*stats.Sigmoid(x)
	}
}

// LogSigmoidFraction is SigmoidFraction on a logarithmic attribute scale
// (populations, areas): width is measured in decades.
func LogSigmoidFraction(attr string, threshold, decades, maxAgree float64) func(e *kb.Entity, domain string) float64 {
	return func(e *kb.Entity, domain string) float64 {
		v := e.Attr(attr, 0)
		if v <= 0 {
			return 1 - maxAgree
		}
		x := math.Log10(v/threshold) / decades
		return (1 - maxAgree) + (2*maxAgree-1)*stats.Sigmoid(4*x)
	}
}

// InvertFraction flips a fraction function (for antonym-leaning
// properties: "calm" is the inverse of crowded-ness).
func InvertFraction(f func(e *kb.Entity, domain string) float64) func(e *kb.Entity, domain string) float64 {
	return func(e *kb.Entity, domain string) float64 {
		return 1 - f(e, domain)
	}
}

// statementEvent is one author's decision to write a statement.
type statementEvent struct {
	spec     int
	entity   kb.EntityID
	positive bool
	domain   string
	// form selects the surface realisation: 0 = direct statement about
	// the property, 1 = positive antonym assertion ("X is small"),
	// 2 = negated antonym assertion ("X is not small").
	form int8
}

// Generator produces snapshots.
type Generator struct {
	base  *kb.KB
	specs []Spec
	cfg   Config
}

// NewGenerator returns a generator over the knowledge base and specs.
func NewGenerator(base *kb.KB, specs []Spec, cfg Config) *Generator {
	return &Generator{base: base, specs: specs, cfg: cfg.withDefaults()}
}

// Generate renders a full snapshot. Deterministic in Config.Seed.
func (g *Generator) Generate() *Snapshot {
	rng := stats.NewRNG(g.cfg.Seed)
	snap := &Snapshot{Specs: g.specs, Truth: map[TruthKey]bool{}}

	var events []statementEvent
	for si := range g.specs {
		spec := &g.specs[si]
		for _, id := range g.base.OfType(spec.Type) {
			e := g.base.Get(id)
			weight := 1.0
			if spec.PopularityWeighting {
				weight = e.Attr("prominence", 1)
			}
			posShare := 0.0
			for _, ds := range g.cfg.Domains {
				if spec.latentTruth(e, ds.Domain) {
					posShare += ds.Share
				}
				// f is the fraction of AUTHORS holding a positive opinion
				// — the population fraction compressed toward ½ (the
				// authoring population is noisier than the survey
				// population). Positive statements arrive at rate
				// n·p+S·f, negative ones at n·p−S·(1−f) — the generative
				// story of Figure 7, generalised to per-entity fractions.
				f := 0.5 + g.cfg.AuthorCompression*(spec.LatentPosFraction(e, ds.Domain)-0.5)
				lamPos := g.cfg.Scale * weight * ds.Share * spec.NpPlus * f
				lamNeg := g.cfg.Scale * weight * ds.Share * spec.NpMinus * (1 - f)
				for k := rng.Poisson(lamPos); k > 0; k-- {
					events = append(events, statementEvent{si, id, true, ds.Domain, 0})
				}
				for k := rng.Poisson(lamNeg); k > 0; k-- {
					form := int8(0)
					if g.cfg.AntonymFrac > 0 && rng.Bernoulli(g.cfg.AntonymFrac) {
						form = 1 // "X is small" instead of "X is not big"
					}
					events = append(events, statementEvent{si, id, false, ds.Domain, form})
				}
				if g.cfg.AntonymFrac > 0 {
					// Middle-band entities attract "X is not <antonym>"
					// statements — true, but NOT evidence that the primary
					// property applies (the paper's objection to naive
					// antonym folding).
					midness := 4 * f * (1 - f)
					lamMid := g.cfg.Scale * weight * ds.Share * spec.NpPlus * g.cfg.AntonymFrac * midness * 0.5
					for k := rng.Poisson(lamMid); k > 0; k-- {
						events = append(events, statementEvent{si, id, true, ds.Domain, 2})
					}
				}
			}
			snap.Truth[TruthKey{id, spec.Property}] = posShare >= 0.5
		}
	}
	snap.Statements = len(events)

	rng.Shuffle(len(events), func(i, j int) { events[i], events[j] = events[j], events[i] })

	r := newRenderer(g.base, rng)
	var sentences []renderedSentence
	for _, ev := range events {
		spec := &g.specs[ev.spec]
		var text string
		if ev.form != 0 {
			text = r.antonymSentence(spec, g.base.Get(ev.entity), ev.form == 2)
			if text == "" { // property without a registered antonym
				text = r.evidenceSentence(spec, g.base.Get(ev.entity), ev.positive, g.cfg)
			}
		} else {
			text = r.evidenceSentence(spec, g.base.Get(ev.entity), ev.positive, g.cfg)
		}
		sentences = append(sentences, renderedSentence{text: text, domain: ev.domain})
	}
	nNoise := int(float64(len(events)) * g.cfg.NoiseRatio)
	for i := 0; i < nNoise; i++ {
		domain := g.pickDomain(rng)
		text := r.noiseSentence(g.specs, g.cfg)
		sentences = append(sentences, renderedSentence{text: text, domain: domain})
	}
	rng.Shuffle(len(sentences), func(i, j int) { sentences[i], sentences[j] = sentences[j], sentences[i] })

	g.packDocuments(snap, sentences, rng)
	return snap
}

type renderedSentence struct {
	text   string
	domain string
}

func (g *Generator) pickDomain(rng *stats.RNG) string {
	u := rng.Float64()
	acc := 0.0
	for _, ds := range g.cfg.Domains {
		acc += ds.Share
		if u < acc {
			return ds.Domain
		}
	}
	return g.cfg.Domains[len(g.cfg.Domains)-1].Domain
}

// packDocuments groups sentences (per domain, to keep documents regional)
// into documents of 1..MaxSentencesPerDoc sentences.
func (g *Generator) packDocuments(snap *Snapshot, sentences []renderedSentence, rng *stats.RNG) {
	byDomain := map[string][]string{}
	for _, s := range sentences {
		byDomain[s.domain] = append(byDomain[s.domain], s.text)
	}
	author := 0
	for _, ds := range g.cfg.Domains {
		texts := byDomain[ds.Domain]
		i := 0
		for i < len(texts) {
			n := rng.IntRange(g.cfg.MinSentencesPerDoc, g.cfg.MaxSentencesPerDoc)
			if i+n > len(texts) {
				n = len(texts) - i
			}
			body := ""
			for _, t := range texts[i : i+n] {
				if body != "" {
					body += " "
				}
				body += t
			}
			snap.Documents = append(snap.Documents, Document{
				URL:    fmt.Sprintf("http://site%d.example.%s/page1", author, ds.Domain),
				Domain: ds.Domain,
				Author: author,
				Text:   body,
			})
			author++
			i += n
		}
	}
}
