package corpus

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/extract"
	"repro/internal/kb"
	"repro/internal/nlp/depparse"
	"repro/internal/nlp/lexicon"
	"repro/internal/nlp/pos"
	"repro/internal/nlp/token"
	"repro/internal/stats"
	"repro/internal/tagger"
)

func smallKB() *kb.KB {
	base := kb.New()
	base.Add(kb.Entity{Name: "kitten", Type: "animal",
		Attributes: map[string]float64{"cuteness": 0.95}})
	base.Add(kb.Entity{Name: "spider", Type: "animal",
		Attributes: map[string]float64{"cuteness": 0.05}})
	base.Add(kb.Entity{Name: "tiger", Type: "animal",
		Attributes: map[string]float64{"cuteness": 0.6}})
	base.Add(kb.Entity{Name: "Bigville", Type: "city", Proper: true,
		Attributes: map[string]float64{"population": 1_000_000}})
	base.Add(kb.Entity{Name: "Tinytown", Type: "city", Proper: true,
		Attributes: map[string]float64{"population": 900}})
	return base
}

func smallSpecs() []Spec {
	return []Spec{
		{Type: "animal", Property: "cute", PA: 0.9, NpPlus: 30, NpMinus: 3,
			Truth: AttrTruth("cuteness", 0.5)},
		{Type: "city", Property: "big", PA: 0.9, NpPlus: 25, NpMinus: 2,
			Truth: AttrTruth("population", 100_000)},
	}
}

func TestGenerateDeterministic(t *testing.T) {
	base := smallKB()
	cfg := Config{Seed: 42}
	a := NewGenerator(base, smallSpecs(), cfg).Generate()
	b := NewGenerator(base, smallSpecs(), cfg).Generate()
	if len(a.Documents) != len(b.Documents) {
		t.Fatalf("doc counts differ: %d vs %d", len(a.Documents), len(b.Documents))
	}
	for i := range a.Documents {
		if a.Documents[i].Text != b.Documents[i].Text {
			t.Fatalf("doc %d differs", i)
		}
	}
}

func TestGenerateTruthTable(t *testing.T) {
	base := smallKB()
	snap := NewGenerator(base, smallSpecs(), Config{Seed: 1}).Generate()
	kitten := base.Candidates("kitten")[0]
	spider := base.Candidates("spider")[0]
	if !snap.Truth[TruthKey{kitten, "cute"}] {
		t.Error("kitten should be latently cute")
	}
	if snap.Truth[TruthKey{spider, "cute"}] {
		t.Error("spider should not be latently cute")
	}
	big := base.Candidates("bigville")[0]
	small := base.Candidates("tinytown")[0]
	if !snap.Truth[TruthKey{big, "big"}] || snap.Truth[TruthKey{small, "big"}] {
		t.Error("city size truth wrong")
	}
}

func TestGenerateStatementVolume(t *testing.T) {
	base := smallKB()
	snap := NewGenerator(base, smallSpecs(), Config{Seed: 2}).Generate()
	// 3 animals with λ≈30 or 3, 2 cities with λ≈25 or 2: expect on the
	// order of 30+3+30 + 25+2 ≈ 90-120 statements.
	if snap.Statements < 40 || snap.Statements > 250 {
		t.Fatalf("statements = %d, outside plausible range", snap.Statements)
	}
	if len(snap.Documents) == 0 {
		t.Fatal("no documents")
	}
}

func TestDocumentsRespectSentenceBounds(t *testing.T) {
	base := smallKB()
	cfg := Config{Seed: 3, MinSentencesPerDoc: 1, MaxSentencesPerDoc: 4}
	snap := NewGenerator(base, smallSpecs(), cfg).Generate()
	for _, d := range snap.Documents {
		n := len(token.SplitSentences(d.Text))
		if n < 1 || n > 4 {
			t.Fatalf("document with %d sentences: %q", n, d.Text)
		}
	}
}

func TestDomainsPartitionDocuments(t *testing.T) {
	base := smallKB()
	cfg := Config{Seed: 4, Domains: []DomainShare{
		{Domain: "com", Share: 0.7}, {Domain: "cn", Share: 0.3}}}
	snap := NewGenerator(base, smallSpecs(), cfg).Generate()
	com := snap.DocumentsInDomain("com")
	cn := snap.DocumentsInDomain("cn")
	if len(com) == 0 || len(cn) == 0 {
		t.Fatalf("domains not populated: com=%d cn=%d", len(com), len(cn))
	}
	if len(com)+len(cn) != len(snap.Documents) {
		t.Fatal("domains do not partition the snapshot")
	}
	if len(com) < len(cn) {
		t.Errorf("com (share .7) has fewer docs (%d) than cn (%d)", len(com), len(cn))
	}
	for _, d := range com {
		if !strings.Contains(d.URL, ".com/") {
			t.Fatalf("com doc with URL %q", d.URL)
		}
	}
}

func TestScaleMultipliesVolume(t *testing.T) {
	base := smallKB()
	small := NewGenerator(base, smallSpecs(), Config{Seed: 5, Scale: 1}).Generate()
	big := NewGenerator(base, smallSpecs(), Config{Seed: 5, Scale: 4}).Generate()
	ratio := float64(big.Statements) / float64(small.Statements+1)
	if ratio < 2.5 || ratio > 6 {
		t.Fatalf("scale 4 produced ratio %v", ratio)
	}
}

func TestLatentPosFraction(t *testing.T) {
	spec := smallSpecs()[0]
	base := smallKB()
	kitten := base.Get(base.Candidates("kitten")[0])
	spider := base.Get(base.Candidates("spider")[0])
	if got := spec.LatentPosFraction(kitten, "com"); got != 0.9 {
		t.Fatalf("kitten pos fraction = %v", got)
	}
	if got := spec.LatentPosFraction(spider, "com"); got < 0.0999 || got > 0.1001 {
		t.Fatalf("spider pos fraction = %v", got)
	}
}

func TestSpecFor(t *testing.T) {
	snap := &Snapshot{Specs: smallSpecs()}
	if _, ok := snap.SpecFor("animal", "cute"); !ok {
		t.Fatal("SpecFor missed an existing spec")
	}
	if _, ok := snap.SpecFor("animal", "big"); ok {
		t.Fatal("SpecFor matched a non-existent spec")
	}
}

func TestHashTruthDeterministicAndRateish(t *testing.T) {
	truth := HashTruth("vital", 0.4)
	base := kb.Default(1)
	pos, n := 0, 0
	for _, id := range base.OfType("city") {
		e := base.Get(id)
		if truth(e, "com") != truth(e, "com") {
			t.Fatal("HashTruth not deterministic")
		}
		if truth(e, "com") {
			pos++
		}
		n++
	}
	rate := float64(pos) / float64(n)
	if rate < 0.3 || rate > 0.5 {
		t.Fatalf("hash truth rate = %v, want ≈ 0.4", rate)
	}
}

// frontend bundles the pipeline stages for round-trip tests.
type frontend struct {
	pt *pos.Tagger
	dp *depparse.Parser
	et *tagger.Tagger
	ex *extract.Extractor
}

func newFrontend(base *kb.KB, v extract.Version) *frontend {
	lex := lexicon.Default()
	base.RegisterLexicon(lex)
	return &frontend{
		pt: pos.New(lex),
		dp: depparse.New(lex),
		et: tagger.New(base, lex),
		ex: extract.NewVersion(lex, v),
	}
}

func (f *frontend) extractAll(text string) []extract.Statement {
	var out []extract.Statement
	for _, sent := range token.SplitSentences(text) {
		tagged := f.pt.Tag(sent)
		tree := f.dp.Parse(tagged)
		mentions := f.et.Tag(tagged)
		out = append(out, f.ex.Extract(tree, mentions)...)
	}
	return out
}

// TestEvidenceSentenceRoundTrip is the load-bearing correctness test: every
// evidence sentence the renderer can produce must be extracted by the
// shipped pattern version (or deliberately skipped if it uses a broad
// copula), with the right entity, property, and polarity.
func TestEvidenceSentenceRoundTrip(t *testing.T) {
	base := smallKB()
	f := newFrontend(base, extract.V4)
	rng := stats.NewRNG(99)
	r := newRenderer(base, rng)
	specs := smallSpecs()
	cfg := Config{}.withDefaults()

	total, extracted, broadCopula := 0, 0, 0
	for trial := 0; trial < 2000; trial++ {
		spec := &specs[trial%len(specs)]
		ids := base.OfType(spec.Type)
		e := base.Get(ids[trial%len(ids)])
		positive := trial%3 != 0
		text := r.evidenceSentence(spec, e, positive, cfg)
		total++

		stmts := f.extractAll(text)
		if len(stmts) == 0 {
			// The only legitimate misses for V4 are broad-copula renders.
			if strings.Contains(text, "seem") {
				broadCopula++
				continue
			}
			t.Fatalf("V4 failed to extract %q (spec %s/%s, positive=%v)",
				text, spec.Type, spec.Property, positive)
		}
		extracted++
		// Find the statement about the tracked property.
		var found *extract.Statement
		for i := range stmts {
			if stmts[i].Property == spec.Property {
				found = &stmts[i]
				break
			}
		}
		if found == nil {
			t.Fatalf("no statement for property %q in %q: %v", spec.Property, text, stmts)
		}
		if found.Entity != e.ID {
			t.Fatalf("entity mismatch for %q: got %d, want %d", text, found.Entity, e.ID)
		}
		wantPol := extract.Positive
		if !positive {
			wantPol = extract.Negative
		}
		if found.Polarity != wantPol {
			t.Fatalf("polarity mismatch for %q: got %v, want %v", text, found.Polarity, wantPol)
		}
	}
	if extracted < total*85/100 {
		t.Fatalf("extraction rate too low: %d/%d (broad copula: %d)", extracted, total, broadCopula)
	}
	if broadCopula == 0 {
		t.Error("expected some broad-copula renders in 2000 trials")
	}
}

// TestBroadCopulaExtractedByV2 verifies the recall the broad-copula
// templates add for versions 1-2.
func TestBroadCopulaExtractedByV2(t *testing.T) {
	base := smallKB()
	f := newFrontend(base, extract.V2)
	stmts := f.extractAll("The kitten seems cute.")
	if len(stmts) != 1 || stmts[0].Property != "cute" || stmts[0].Polarity != extract.Positive {
		t.Fatalf("V2 on broad copula: %v", stmts)
	}
	stmts = f.extractAll("Kittens don't seem cute.")
	if len(stmts) != 1 || stmts[0].Polarity != extract.Negative {
		t.Fatalf("V2 on negated broad copula: %v", stmts)
	}
}

// TestNoiseSentencesFilteredByV4 verifies that the distractors are
// invisible to the shipped version but (partially) visible to V2.
func TestNoiseSentencesFilteredByV4(t *testing.T) {
	base := smallKB()
	f4 := newFrontend(base, extract.V4)
	f2 := newFrontend(base, extract.V2)
	rng := stats.NewRNG(123)
	r := newRenderer(base, rng)
	specs := smallSpecs()
	cfg := Config{}.withDefaults()

	v4Hits, v2Hits := 0, 0
	const trials = 1000
	for i := 0; i < trials; i++ {
		text := r.noiseSentence(specs, cfg)
		v4Hits += len(f4.extractAll(text))
		v2Hits += len(f2.extractAll(text))
	}
	if v4Hits > trials/50 {
		t.Fatalf("V4 extracted %d statements from %d noise sentences", v4Hits, trials)
	}
	if v2Hits < trials/10 {
		t.Fatalf("V2 extracted only %d from %d noise sentences — distractors too weak", v2Hits, trials)
	}
}

func TestRegionalSpecTruthDiffers(t *testing.T) {
	base := smallKB()
	spec := RegionalSpec("big", "com", "cn", 100_000)
	// Bigville (1M) is big in both regions; a 250k city would differ.
	base.Add(kb.Entity{Name: "Midburg", Type: "city", Proper: true,
		Attributes: map[string]float64{"population": 250_000}})
	mid := base.Get(base.Candidates("midburg")[0])
	if !spec.Truth(mid, "com") {
		t.Error("250k should be big for domain com (threshold 100k)")
	}
	if spec.Truth(mid, "cn") {
		t.Error("250k should not be big for domain cn (threshold 400k)")
	}
}

func TestTable2SpecsComplete(t *testing.T) {
	specs := Table2Specs()
	if len(specs) != 25 {
		t.Fatalf("Table 2 has %d specs, want 25", len(specs))
	}
	byType := map[string]int{}
	for _, s := range specs {
		byType[s.Type]++
		if s.PA <= 0.5 || s.PA >= 1 {
			t.Errorf("%s/%s: pA = %v out of range", s.Type, s.Property, s.PA)
		}
		if s.NpPlus <= 0 || s.NpMinus <= 0 {
			t.Errorf("%s/%s: non-positive rates", s.Type, s.Property)
		}
		if s.Truth == nil && s.PosFraction == nil {
			t.Errorf("%s/%s: no latent truth", s.Type, s.Property)
		}
	}
	for _, typ := range []string{"animal", "celebrity", "city", "profession", "sport"} {
		if byType[typ] != 5 {
			t.Errorf("type %q has %d properties, want 5", typ, byType[typ])
		}
	}
}

func TestInvertedPolarityBiasExists(t *testing.T) {
	// At least one Table-2 spec must have np−S > np+S (the safe-cities
	// narrative of Example 2).
	found := false
	for _, s := range Table2Specs() {
		if s.NpMinus > s.NpPlus {
			found = true
		}
	}
	if !found {
		t.Fatal("no spec with inverted polarity bias")
	}
}

func TestAppendixASpecs(t *testing.T) {
	specs := AppendixASpecs()
	if len(specs) != 3 {
		t.Fatalf("Appendix A has %d specs", len(specs))
	}
	types := map[string]bool{}
	for _, s := range specs {
		types[s.Type] = true
	}
	if !types["country"] || !types["lake"] || !types["mountain"] {
		t.Fatalf("Appendix A types: %v", types)
	}
}

func TestRandomSpecsVaryParameters(t *testing.T) {
	types := []string{"t1", "t2", "t3", "t4", "t5"}
	props := []string{"cute", "big", "rare"}
	specs := RandomSpecs(types, props, 1)
	if len(specs) != 5 {
		t.Fatalf("specs = %d", len(specs))
	}
	pas := map[float64]bool{}
	for _, s := range specs {
		pas[s.PA] = true
		if !s.PopularityWeighting {
			t.Error("random specs should use popularity weighting")
		}
	}
	if len(pas) < 3 {
		t.Error("pA values should vary across random specs")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	base := smallKB()
	snap := NewGenerator(base, smallSpecs(), Config{Seed: 33}).Generate()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, snap.Documents); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(snap.Documents) {
		t.Fatalf("docs = %d, want %d", len(got), len(snap.Documents))
	}
	for i := range got {
		if got[i] != snap.Documents[i] {
			t.Fatalf("doc %d mismatch", i)
		}
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{ok}\n")); err == nil {
		t.Fatal("garbage line accepted")
	}
	if !strings.Contains(func() string {
		_, err := ReadJSONL(strings.NewReader("{\"URL\":\"x\"}\nnot json\n"))
		return err.Error()
	}(), "line 2") {
		t.Fatal("error should name the failing line")
	}
}

func TestReadJSONLSkipsBlankLines(t *testing.T) {
	docs, err := ReadJSONL(strings.NewReader("\n{\"URL\":\"a\"}\n\n{\"URL\":\"b\"}\n"))
	if err != nil || len(docs) != 2 {
		t.Fatalf("docs=%v err=%v", docs, err)
	}
}
