package corpus

import (
	"bytes"
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzJSONL drives the JSONL reader with arbitrary bytes interleaved into
// a valid snapshot: the write→read round trip must preserve every valid
// document, garbage must never panic or wedge the iterator, and lenient
// iteration must account for every input line as either a document, a
// skip, or a blank.
func FuzzJSONL(f *testing.F) {
	f.Add("hello", "not json", 0)
	f.Add("Kittens are cute.", `{"truncated":`, 1)
	f.Add("a\nb\nc", strings.Repeat("x", 300), 2)
	f.Add("", "\x00\xff\xfe", 3)
	f.Add("quote\"back\\slash", "[1,2,3]", 1)
	f.Fuzz(func(t *testing.T, text, garbage string, pos int) {
		if strings.ContainsAny(garbage, "\n\r") || !utf8.ValidString(text) {
			// Injected garbage must stay on its own line, and Go's JSON
			// encoder replaces invalid UTF-8 (breaking round-trip equality)
			// — neither case is what this fuzz target is about.
			t.Skip()
		}
		docs := []Document{
			{URL: "u0", Domain: "d", Author: 7, Text: text},
			{URL: "u1", Text: "second"},
			{URL: "u2", Text: "third"},
		}
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, docs); err != nil {
			t.Fatalf("WriteJSONL: %v", err)
		}

		// Clean round trip first.
		got, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(got) != len(docs) {
			t.Fatalf("round trip decoded %d documents, want %d", len(got), len(docs))
		}
		for i := range docs {
			if got[i] != docs[i] {
				t.Fatalf("round trip doc %d: %+v vs %+v", i, got[i], docs[i])
			}
		}

		// Now splice the garbage line between documents; strict reading may
		// fail (never panic), lenient reading must still deliver every valid
		// document and count the rest.
		lines := strings.SplitAfter(buf.String(), "\n")
		if pos < 0 {
			pos = -pos
		}
		pos %= len(lines)
		dirty := strings.Join(lines[:pos], "") + garbage + "\n" + strings.Join(lines[pos:], "")

		if _, err := ReadJSONL(strings.NewReader(dirty)); err != nil {
			var probe Document
			if jerr := probe.unmarshalProbe(garbage); jerr == nil {
				t.Fatalf("strict read rejected input whose extra line is valid: %v", err)
			}
		}

		it := NewIterator(strings.NewReader(dirty), IteratorConfig{Lenient: true, MaxLineBytes: 256})
		var kept []Document
		for it.Next() {
			kept = append(kept, it.Doc())
		}
		if err := it.Err(); err != nil {
			t.Fatalf("lenient read failed: %v", err)
		}
		st := it.Stats()
		oversized := 0
		for _, l := range strings.SplitAfter(dirty, "\n") {
			if len(trimEOL([]byte(l))) > 256 {
				oversized++
			}
		}
		if int(st.Oversized) != oversized {
			t.Fatalf("counted %d oversized lines, input has %d", st.Oversized, oversized)
		}
		// Every valid, in-budget document line must survive lenient mode.
		minKept := 0
		for _, l := range strings.SplitAfter(buf.String(), "\n") {
			if n := len(trimEOL([]byte(l))); n > 0 && n <= 256 {
				minKept++
			}
		}
		if len(kept) < minKept {
			t.Fatalf("lenient read kept %d documents, at least %d valid lines present", len(kept), minKept)
		}
	})
}

// unmarshalProbe reports whether one line would decode as a document —
// the fuzz oracle for "should strict mode have accepted this input?".
func (d *Document) unmarshalProbe(line string) error {
	it := NewIterator(strings.NewReader(line+"\n"), IteratorConfig{})
	for it.Next() {
		*d = it.Doc()
	}
	return it.Err()
}
