package corpus

import (
	"hash/fnv"

	"repro/internal/kb"
	"repro/internal/stats"
)

// HashFraction builds a deterministic pseudo-random per-entity positive
// fraction: roughly a `rate` share of entities lean positive, with a
// smooth agreement spread up to maxAgree (entities hashed near the cut
// line are controversial).
func HashFraction(property string, rate, maxAgree float64) func(e *kb.Entity, domain string) float64 {
	return func(e *kb.Entity, domain string) float64 {
		h := fnv.New64a()
		h.Write([]byte(e.Name))
		h.Write([]byte{0})
		h.Write([]byte(property))
		u := float64(h.Sum64()%1_000_000) / 1_000_000
		x := (rate - u) * 10 // near the cut → controversial
		return (1 - maxAgree) + (2*maxAgree-1)*stats.Sigmoid(x)
	}
}

// Table2Specs returns the 25 evaluated (type, property) combinations of
// Table 2. Latent opinion fractions are per-entity sigmoids on KB
// attributes where a natural proxy exists (kittens cute at 98%, tigers at
// ~60% — the Figure 10 spread) and smoothed hashes otherwise. Agreement
// ceilings and emission biases vary per combination — the heterogeneity
// that justifies per-combination modelling (Sections 2, 5.1, 7.3).
func Table2Specs() []Spec {
	return []Spec{
		// --- Animals -----------------------------------------------------
		// Worker agreement on "dangerous animals" was the highest (≈18/20).
		{Type: "animal", Property: "dangerous", PA: 0.92, NpPlus: 30, NpMinus: 1.5,
			PopularityWeighting: true,
			PosFraction:         SigmoidFraction("ferocity", 0.55, 0.08, 0.985)},
		// Cute: users state cuteness far more often than its absence.
		{Type: "animal", Property: "cute", PA: 0.90, NpPlus: 45, NpMinus: 2,
			PopularityWeighting: true,
			PosFraction:         SigmoidFraction("cuteness", 0.55, 0.1, 0.985)},
		{Type: "animal", Property: "big", PA: 0.88, NpPlus: 25, NpMinus: 1.2,
			PopularityWeighting: true,
			PosFraction:         LogSigmoidFraction("weight_kg", 100, 0.8, 0.98)},
		{Type: "animal", Property: "friendly", PA: 0.82, NpPlus: 18, NpMinus: 1.5,
			PopularityWeighting: true,
			PosFraction:         InvertFraction(SigmoidFraction("ferocity", 0.25, 0.1, 0.96))},
		{Type: "animal", Property: "deadly", PA: 0.9, NpPlus: 20, NpMinus: 1,
			PopularityWeighting: true,
			PosFraction:         SigmoidFraction("ferocity", 0.8, 0.07, 0.985)},

		// --- Celebrities ---------------------------------------------------
		{Type: "celebrity", Property: "cool", PA: 0.78, NpPlus: 22, NpMinus: 1.2,
			PopularityWeighting: true,
			PosFraction:         HashFraction("cool", 0.45, 0.92)},
		{Type: "celebrity", Property: "crazy", PA: 0.75, NpPlus: 15, NpMinus: 1,
			PopularityWeighting: true,
			PosFraction:         HashFraction("crazy", 0.3, 0.88)},
		{Type: "celebrity", Property: "pretty", PA: 0.8, NpPlus: 28, NpMinus: 1.4,
			PopularityWeighting: true,
			PosFraction:         HashFraction("pretty", 0.5, 0.96)},
		{Type: "celebrity", Property: "quiet", PA: 0.76, NpPlus: 6, NpMinus: 15,
			PopularityWeighting: true,
			PosFraction:         HashFraction("quiet", 0.35, 0.87)},
		{Type: "celebrity", Property: "young", PA: 0.88, NpPlus: 16, NpMinus: 1.5,
			PopularityWeighting: true,
			PosFraction:         InvertFraction(SigmoidFraction("age", 35, 6, 0.98))},

		// --- Cities --------------------------------------------------------
		{Type: "city", Property: "big", PA: 0.9, NpPlus: 40, NpMinus: 2,
			PopularityWeighting: true,
			PosFraction:         LogSigmoidFraction("population", 250_000, 0.5, 0.985)},
		// Calm: authors complain when a city is NOT calm — the inverted
		// polarity bias (np−S ≫ np+S) of the paper's safe-cities example.
		{Type: "city", Property: "calm", PA: 0.8, NpPlus: 4, NpMinus: 30,
			PopularityWeighting: true,
			PosFraction:         InvertFraction(LogSigmoidFraction("population", 120_000, 0.6, 0.93))},
		{Type: "city", Property: "cheap", PA: 0.78, NpPlus: 5, NpMinus: 28,
			PopularityWeighting: true,
			PosFraction:         InvertFraction(LogSigmoidFraction("population", 200_000, 0.7, 0.9))},
		{Type: "city", Property: "hectic", PA: 0.82, NpPlus: 18, NpMinus: 1,
			PopularityWeighting: true,
			PosFraction:         LogSigmoidFraction("population", 500_000, 0.6, 0.95)},
		{Type: "city", Property: "multicultural", PA: 0.85, NpPlus: 20, NpMinus: 1,
			PopularityWeighting: true,
			PosFraction:         LogSigmoidFraction("population", 300_000, 0.6, 0.96)},

		// --- Professions -----------------------------------------------------
		// Worker agreement on "dangerous professions" is lower than on
		// dangerous animals (≈16/20 in Section 7.3).
		{Type: "profession", Property: "dangerous", PA: 0.84, NpPlus: 26, NpMinus: 1.4,
			PopularityWeighting: true,
			PosFraction:         SigmoidFraction("risk", 0.6, 0.12, 0.96)},
		{Type: "profession", Property: "exciting", PA: 0.76, NpPlus: 20, NpMinus: 1.2,
			PopularityWeighting: true,
			PosFraction:         SigmoidFraction("risk", 0.5, 0.18, 0.89)},
		{Type: "profession", Property: "rare", PA: 0.86, NpPlus: 16, NpMinus: 1.5,
			PopularityWeighting: true,
			PosFraction:         SigmoidFraction("scarcity", 0.6, 0.1, 0.97)},
		{Type: "profession", Property: "solid", PA: 0.77, NpPlus: 18, NpMinus: 1.2,
			PopularityWeighting: true,
			PosFraction:         SigmoidFraction("salary", 0.55, 0.15, 0.9)},
		{Type: "profession", Property: "vital", PA: 0.8, NpPlus: 16, NpMinus: 1.5,
			PopularityWeighting: true,
			PosFraction:         HashFraction("vital", 0.4, 0.92)},

		// --- Sports ---------------------------------------------------------
		{Type: "sport", Property: "addictive", PA: 0.75, NpPlus: 18, NpMinus: 1.2,
			PopularityWeighting: true,
			PosFraction:         HashFraction("addictive", 0.45, 0.88)},
		// Boring sports: lowest agreement of the set (≈15/20).
		{Type: "sport", Property: "boring", PA: 0.72, NpPlus: 5, NpMinus: 22,
			PopularityWeighting: true,
			PosFraction:         InvertFraction(SigmoidFraction("speed", 0.3, 0.15, 0.8))},
		{Type: "sport", Property: "dangerous", PA: 0.83, NpPlus: 24, NpMinus: 1.4,
			PopularityWeighting: true,
			PosFraction:         SigmoidFraction("risk", 0.6, 0.13, 0.94)},
		{Type: "sport", Property: "fast", PA: 0.85, NpPlus: 22, NpMinus: 1.2,
			PopularityWeighting: true,
			PosFraction:         SigmoidFraction("speed", 0.7, 0.1, 0.97)},
		{Type: "sport", Property: "popular", PA: 0.87, NpPlus: 30, NpMinus: 1.5,
			PopularityWeighting: true,
			PosFraction:         SigmoidFraction("popularity", 0.6, 0.09, 0.98)},
	}
}

// Figure3Spec returns the Section-2 empirical-study combination: big
// Californian cities, with heavy polarity bias (negative statements an
// order of magnitude rarer) and population-correlated truth.
func Figure3Spec() Spec {
	return Spec{
		Type: "city", Property: "big", PA: 0.9, NpPlus: 40, NpMinus: 2,
		PosFraction: LogSigmoidFraction("population", 250_000, 0.5, 0.985),
	}
}

// AppendixASpecs returns the three additional empirical-study combinations
// of Appendix A: wealthy countries (GDP per capita), big Swiss lakes
// (area), high British mountains (relative height).
func AppendixASpecs() []Spec {
	return []Spec{
		{Type: "country", Property: "wealthy", PA: 0.88, NpPlus: 30, NpMinus: 2,
			PopularityWeighting: true,
			PosFraction:         LogSigmoidFraction("gdp_per_capita", 20_000, 0.5, 0.95)},
		{Type: "lake", Property: "big", PA: 0.86, NpPlus: 18, NpMinus: 1.5,
			PopularityWeighting: true,
			PosFraction:         LogSigmoidFraction("area_km2", 30, 0.7, 0.94)},
		{Type: "mountain", Property: "high", PA: 0.87, NpPlus: 16, NpMinus: 1.5,
			PopularityWeighting: true,
			PosFraction:         SigmoidFraction("height_m", 700, 120, 0.95)},
	}
}

// RandomSpecs builds specs for randomly sampled (type, property)
// combinations over the synthetic long-tail domains of Appendix D. The
// prominence-weighted emission makes most entities unmentioned, which is
// what collapses baseline coverage in Table 5.
func RandomSpecs(types []string, properties []string, seed uint64) []Spec {
	specs := make([]Spec, 0, len(types))
	for i, typ := range types {
		prop := properties[i%len(properties)]
		// Vary parameters deterministically per combination.
		pa := 0.72 + float64((i*37)%23)/100 // 0.72 .. 0.94
		npPlus := 60 + float64((i*53)%100)  // 60 .. 159
		npMinus := 3 + float64((i*29)%8)    // 3 .. 10
		specs = append(specs, Spec{
			Type: typ, Property: prop,
			PA: pa, NpPlus: npPlus, NpMinus: npMinus,
			PosFraction:         HashFraction(prop, 0.35, pa),
			PopularityWeighting: true,
		})
	}
	_ = seed
	return specs
}

// RegionalSpec builds a city-property spec whose latent truth differs by
// authoring region: entities above the threshold for the first domain,
// above 4× the threshold for the second — e.g. what counts as a "big
// city" differs between regions (Section 2's Chinese vs American users).
func RegionalSpec(property string, domainA, domainB string, thresholdA float64) Spec {
	return Spec{
		Type: "city", Property: property, PA: 0.88, NpPlus: 30, NpMinus: 3,
		Truth: func(e *kb.Entity, domain string) bool {
			t := thresholdA
			if domain == domainB {
				t = thresholdA * 4
			}
			return e.Attr("population", 0) >= t
		},
	}
}
