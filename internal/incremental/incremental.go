// Package incremental is the always-on miner: it ingests corpus epochs
// (in-memory document batches or a streaming corpus.Iterator), folds each
// epoch's evidence delta into the cumulative store through the proven
// Merge algebra, and re-runs grouping and EM only for the *dirty*
// (type, property) groups — those whose counters the epoch changed. The
// refreshed fits are spliced into an immutable, atomically published
// snapshot shaped exactly like a batch *pipeline.Result*.
//
// Correctness contract (proven by the differential epoch harness in
// internal/testkit, bit for bit): for ANY partition of a corpus into
// epochs, the snapshot published after the last epoch is identical to one
// batch pipeline.Run over the concatenation — for any worker count, any
// split points, and with panic-quarantined documents. The argument:
//
//   - Evidence counters only ever add, and Store.Merge is commutative and
//     associative, so the cumulative store after N epochs equals the batch
//     store (PR 1's algebra).
//   - A group's EM fit is a deterministic function of its cumulative
//     counters and the EM config. A *clean* group's counters did not
//     change this epoch, so its previous fit — itself computed from those
//     exact counters — is already the batch answer; only dirty groups
//     need re-fitting, from scratch, over their cumulative counters.
//   - Counters never decrease, so a group's statement total is monotone:
//     once it crosses the ρ threshold it stays modelled, and a dirty
//     group below ρ has never been modelled — splicing is insert-or-
//     replace, never delete.
//
// Epochs are atomic: a cancelled or failed epoch leaves the published
// snapshot, the cumulative store, and every statistic untouched.
//
// The published snapshot's Groups, opinions, and lookup indexes are
// immutable. Its Store field references the live cumulative store —
// safe for concurrent readers (the store locks internally) but its
// counters advance as later epochs merge; readers needing a frozen view
// use the snapshot's Groups.
package incremental

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/corpus"
	"repro/internal/evidence"
	"repro/internal/kb"
	"repro/internal/nlp/lexicon"
	"repro/internal/pipeline"
)

// EpochStats reports one ingested epoch. Duration is wall-clock and —
// like pipeline.Timings — outside the determinism contract; every other
// field is schedule-independent.
type EpochStats struct {
	// Epoch is the zero-based index of this epoch.
	Epoch int
	// Documents counts documents committed this epoch; Quarantined counts
	// documents the panic boundary removed from it.
	Documents   int
	Quarantined int
	// Statements counts evidence statements the epoch added.
	Statements int64
	// DirtyGroups counts (type, property) groups whose counters changed.
	// RefitGroups of them were at or above ρ and were re-fitted with EM,
	// processing RefitTuples entity tuples — the re-fit cost, proportional
	// to the dirty set rather than the corpus.
	DirtyGroups int
	RefitGroups int
	RefitTuples int64
	// ModelledGroups is the total modelled group count after the splice.
	ModelledGroups int
	// Duration is the end-to-end epoch latency.
	Duration time.Duration
}

// Miner is the incremental mining engine. Ingestion is serialised (the
// Miner locks internally); Snapshot may be called concurrently from any
// goroutine and never blocks on an ingest in progress.
type Miner struct {
	mu   sync.Mutex
	base *kb.KB
	lex  *lexicon.Lexicon
	cfg  pipeline.Config
	rho  int64

	store *evidence.Store
	acc   *evidence.GroupAccumulator
	fits  map[evidence.GroupKey]pipeline.GroupResult

	seq         int // documents consumed across epochs (committed + quarantined)
	sentences   int64
	statements  int64
	quarantined []pipeline.Quarantined
	skipped     int64
	epochs      int

	published atomic.Pointer[pipeline.Result]
}

// New returns a Miner over the knowledge base and lexicon with an empty
// published snapshot. cfg is interpreted exactly as by pipeline.Run;
// cfg.Fault applies per document inside each epoch's quarantine boundary,
// with document indices global across epochs.
func New(base *kb.KB, lex *lexicon.Lexicon, cfg pipeline.Config) *Miner {
	rho := cfg.Rho
	if rho == 0 {
		rho = 100
	}
	m := &Miner{
		base:  base,
		lex:   lex,
		cfg:   cfg,
		rho:   rho,
		store: evidence.NewStore(),
		acc:   evidence.NewGroupAccumulator(base),
		fits:  map[evidence.GroupKey]pipeline.GroupResult{},
	}
	m.published.Store(pipeline.AssembleResult(m.store, nil, pipeline.ResultStats{}))
	return m
}

// Snapshot returns the currently published mining result: the complete
// batch-identical result over every document ingested so far. Before the
// first epoch it is an empty (but fully indexed) result.
func (m *Miner) Snapshot() *pipeline.Result { return m.published.Load() }

// Epochs returns the number of epochs ingested.
func (m *Miner) Epochs() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epochs
}

// Ingest runs one epoch over an in-memory document batch: extract the
// epoch's evidence delta, merge, re-fit the dirty groups, splice, and
// publish the refreshed snapshot. On error (cancellation mid-extraction)
// nothing is committed and the published snapshot is unchanged.
func (m *Miner) Ingest(ctx context.Context, docs []corpus.Document) (EpochStats, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ingest(ctx, docs)
}

// IngestStream drains a corpus iterator in epochs of up to batch
// documents (default 1024), publishing a snapshot after each. It returns
// the stats of every completed epoch; on a read error the documents read
// before the failure are still ingested, then the error is returned.
func (m *Miner) IngestStream(ctx context.Context, it *corpus.Iterator, batch int) ([]EpochStats, error) {
	if batch <= 0 {
		batch = 1024
	}
	var all []EpochStats
	for {
		docs := make([]corpus.Document, 0, batch)
		for len(docs) < batch && it.Next() {
			docs = append(docs, it.Doc())
		}
		readErr := it.Err()
		if readErr != nil {
			readErr = fmt.Errorf("incremental: corpus read: %w", readErr)
		}
		if len(docs) == 0 {
			return all, readErr
		}
		m.mu.Lock()
		m.skipped = it.Stats().Skipped()
		st, err := m.ingest(ctx, docs)
		m.mu.Unlock()
		if err != nil {
			return all, err
		}
		all = append(all, st)
		if readErr != nil {
			return all, readErr
		}
	}
}

// ingest is the epoch state machine. Caller holds m.mu.
func (m *Miner) ingest(ctx context.Context, docs []corpus.Document) (EpochStats, error) {
	o := m.cfg.Obs
	io := o.Incremental()
	o.StartRun(len(docs), m.extractWorkers(len(docs)))
	span := o.Phase("epoch")

	// Extract the epoch's evidence delta, with document indices offset so
	// quarantine records match a batch run over the concatenation. Atomic
	// epochs: a cancelled extraction commits nothing.
	ext, err := pipeline.ExtractEvidence(ctx, docs, m.base, m.lex, m.cfg, m.seq)
	if err != nil {
		o.EndRun()
		return EpochStats{}, err
	}
	delta := ext.Store
	newStatements := delta.TotalStatements()

	// Merge the delta into the cumulative store and the per-group
	// aggregates; the dirty set is every group the delta touched.
	m.store.Merge(delta)
	dirty := m.acc.AbsorbDelta(delta)

	// Re-fit only the dirty groups at or above ρ, over their *cumulative*
	// counters — from scratch, exactly as a batch run would, so the fit is
	// bit-identical to the batch fit of the same counters.
	groups := make([]evidence.Group, 0, len(dirty))
	for _, k := range dirty {
		if g, ok := m.acc.Materialize(k, m.rho); ok {
			groups = append(groups, g)
		}
	}
	refit := pipeline.FitGroups(groups, m.cfg)
	var refitTuples int64
	for i := range refit {
		m.fits[refit[i].Key] = refit[i]
		refitTuples += int64(len(refit[i].Entities))
	}

	// Commit the epoch's input-side statistics and publish.
	m.seq += ext.Consumed
	m.sentences += ext.Sentences
	m.statements += newStatements
	m.quarantined = append(m.quarantined, ext.Quarantined...)
	snap := m.publish()
	m.epochs++

	stats := EpochStats{
		Epoch:          m.epochs - 1,
		Documents:      ext.Consumed - len(ext.Quarantined),
		Quarantined:    len(ext.Quarantined),
		Statements:     newStatements,
		DirtyGroups:    len(dirty),
		RefitGroups:    len(refit),
		RefitTuples:    refitTuples,
		ModelledGroups: len(snap.Groups),
		Duration:       span.End(),
	}
	io.Epochs.Inc()
	io.DirtyGroups.Add(int64(stats.DirtyGroups))
	io.DirtyPerEpoch.Observe(float64(stats.DirtyGroups))
	io.RefitGroups.Add(int64(stats.RefitGroups))
	io.RefitTuples.Add(stats.RefitTuples)
	if stats.ModelledGroups > 0 {
		io.RefitFraction.Set(float64(stats.RefitGroups) / float64(stats.ModelledGroups))
	}
	io.EpochMillis.Observe(float64(stats.Duration) / float64(time.Millisecond))
	o.EndRun()
	return stats, nil
}

// publish splices the current fits into a fresh immutable snapshot and
// swaps it in. Clean groups keep their previous GroupResult values (their
// counters, and therefore their batch fits, did not change); dirty groups
// carry the re-fit. Caller holds m.mu.
func (m *Miner) publish() *pipeline.Result {
	keys := make([]evidence.GroupKey, 0, len(m.fits))
	for k := range m.fits {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].Type != keys[b].Type {
			return keys[a].Type < keys[b].Type
		}
		return keys[a].Property < keys[b].Property
	})
	groups := make([]pipeline.GroupResult, len(keys))
	for i, k := range keys {
		groups[i] = m.fits[k]
	}
	res := pipeline.AssembleResult(m.store, groups, pipeline.ResultStats{
		TotalStatements:   m.statements,
		DistinctPairs:     m.store.Len(),
		PairsBeforeFilter: m.acc.Pairs(),
		Sentences:         m.sentences,
		Documents:         m.seq - len(m.quarantined),
		Quarantined:       append([]pipeline.Quarantined(nil), m.quarantined...),
		SkippedLines:      m.skipped,
	})
	m.published.Store(res)
	return res
}

// extractWorkers mirrors the pipeline's worker-count resolution for the
// progress display.
func (m *Miner) extractWorkers(docs int) int {
	w := m.cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > docs {
		w = docs
	}
	return w
}
