package incremental_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/incremental"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/testkit"
)

// TestEmptyMiner pins the pre-ingest contract: a fresh miner publishes an
// empty but fully usable snapshot.
func TestEmptyMiner(t *testing.T) {
	w := testkit.NewTinyWorld(1, 0.1)
	m := incremental.New(w.KB, w.Lex, pipeline.Config{Rho: 1})
	snap := m.Snapshot()
	if snap == nil {
		t.Fatal("fresh miner published a nil snapshot")
	}
	if len(snap.Groups) != 0 || snap.Documents != 0 || snap.TotalStatements != 0 {
		t.Fatalf("fresh snapshot is not empty: %d groups, %d docs, %d statements",
			len(snap.Groups), snap.Documents, snap.TotalStatements)
	}
	if _, ok := snap.Group("animal", "cute"); ok {
		t.Fatal("empty snapshot resolved a group")
	}
	if m.Epochs() != 0 {
		t.Fatalf("fresh miner reports %d epochs", m.Epochs())
	}
}

// TestIngestStreamMatchesBatch drains a JSONL corpus through IngestStream
// in small batches and asserts the final snapshot is bit-identical to the
// batch run, and that the per-epoch stats account for every document.
func TestIngestStreamMatchesBatch(t *testing.T) {
	w := testkit.NewTinyWorld(2, 0.4)
	docs := w.Docs()
	var buf bytes.Buffer
	if err := corpus.WriteJSONL(&buf, docs); err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.Config{Rho: 5, Workers: 2}
	batch := pipeline.Run(docs, w.KB, w.Lex, cfg)

	m := incremental.New(w.KB, w.Lex, cfg)
	it := corpus.NewIterator(&buf, corpus.IteratorConfig{})
	stats, err := m.IngestStream(context.Background(), it, 7)
	if err != nil {
		t.Fatalf("clean stream failed: %v", err)
	}
	want := (len(docs) + 6) / 7
	if len(stats) != want {
		t.Fatalf("stream produced %d epochs over %d docs at batch 7, want %d", len(stats), len(docs), want)
	}
	var total int
	for _, st := range stats {
		total += st.Documents
	}
	if total != len(docs) {
		t.Fatalf("epoch stats count %d documents, stream carried %d", total, len(docs))
	}
	if diffs := testkit.DiffResults(m.Snapshot(), batch); len(diffs) > 0 {
		t.Errorf("streamed incremental run diverges from batch:\n  %s", strings.Join(diffs, "\n  "))
	}
}

// TestIngestStreamReadError kills the reader mid-stream: the documents
// read before the failure must still be ingested (the snapshot matches a
// batch run over them), and the cause must surface.
func TestIngestStreamReadError(t *testing.T) {
	w := testkit.NewTinyWorld(3, 0.4)
	docs := w.Docs()
	var buf bytes.Buffer
	if err := corpus.WriteJSONL(&buf, docs); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	cfg := pipeline.Config{Rho: 5, Workers: 2}

	m := incremental.New(w.KB, w.Lex, cfg)
	it := corpus.NewIterator(&testkit.FailingReader{R: bytes.NewReader(data), N: int64(len(data) / 2)},
		corpus.IteratorConfig{})
	stats, err := m.IngestStream(context.Background(), it, 4)
	if err == nil {
		t.Fatal("injected read failure was not reported")
	}
	var consumed int
	for _, st := range stats {
		consumed += st.Documents
	}
	if consumed == 0 || consumed >= len(docs) {
		t.Fatalf("consumed %d of %d — fault fired at the wrong time", consumed, len(docs))
	}
	batch := pipeline.Run(docs[:consumed], w.KB, w.Lex, cfg)
	if diffs := testkit.DiffResults(m.Snapshot(), batch); len(diffs) > 0 {
		t.Errorf("partial stream snapshot diverges from batch over consumed prefix:\n  %s",
			strings.Join(diffs, "\n  "))
	}
}

// TestObsInvariance: telemetry is write-only — a miner wired to a live obs
// sink must publish snapshots bit-identical to one with none, and the
// epoch metrics must actually record.
func TestObsInvariance(t *testing.T) {
	w := testkit.NewTinyWorld(1, 0.4)
	docs := w.Docs()
	cfg := pipeline.Config{Rho: 5, Workers: 2}

	silent := incremental.New(w.KB, w.Lex, cfg)
	o := obs.New()
	ocfg := cfg
	ocfg.Obs = o
	observed := incremental.New(w.KB, w.Lex, ocfg)

	half := len(docs) / 2
	for _, epoch := range [][]corpus.Document{docs[:half], docs[half:]} {
		if _, err := silent.Ingest(context.Background(), epoch); err != nil {
			t.Fatal(err)
		}
		if _, err := observed.Ingest(context.Background(), epoch); err != nil {
			t.Fatal(err)
		}
	}
	if diffs := testkit.DiffResults(observed.Snapshot(), silent.Snapshot()); len(diffs) > 0 {
		t.Errorf("live obs sink changed the published snapshot:\n  %s", strings.Join(diffs, "\n  "))
	}
	if got := o.Incremental().Epochs.Value(); got != 2 {
		t.Errorf("epoch counter recorded %d epochs, want 2", got)
	}
	if o.Incremental().RefitTuples.Value() == 0 {
		t.Error("refit-tuple counter recorded nothing over two modelled epochs")
	}
}
