package incremental_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/incremental"
	"repro/internal/pipeline"
	"repro/internal/testkit"
)

// fuzzWorld is the shared tiny fixture for the fuzz target: building a KB
// and registering the lexicon once keeps each fuzz execution cheap enough
// for a meaningful corpus-splitting search.
var fuzzWorld = testkit.NewTinyWorld(1, 0.05)

// FuzzEpochSplit feeds arbitrary text — split into documents on newlines —
// through the incremental miner at fuzzer-chosen epoch boundaries and
// diffs the final snapshot against the batch oracle over the same
// documents. Any divergence, and any panic escaping the quarantine
// boundary, is a finding: the bit-identity contract has no "except for
// weird input" clause.
func FuzzEpochSplit(f *testing.F) {
	f.Add("Kittens are cute. Spiders are not cute.\nThe puppy is cute.", uint8(1), uint8(2))
	f.Add("The spider is not cute.\n\nSlugs are cute?!", uint8(0), uint8(0))
	f.Add("kitten kitten kitten", uint8(200), uint8(3))
	f.Add("Pandas seem cute.\nRats are cute.\nWasps are cute.\nCobras are cute.", uint8(2), uint8(5))
	f.Fuzz(func(t *testing.T, data string, cut uint8, cut2 uint8) {
		if len(data) > 4096 {
			t.Skip() // bound per-execution cost; long inputs add no new structure
		}
		var docs []corpus.Document
		for _, line := range strings.Split(data, "\n") {
			docs = append(docs, corpus.Document{Text: line})
		}
		// Two fuzzer-chosen cuts — possibly equal, possibly 0 or len — give
		// three epochs covering empty, single-doc, and lopsided shapes.
		a := int(cut) % (len(docs) + 1)
		b := int(cut2) % (len(docs) + 1)
		if a > b {
			a, b = b, a
		}
		cfg := pipeline.Config{Rho: 1, Workers: 2}
		batch := pipeline.Run(docs, fuzzWorld.KB, fuzzWorld.Lex, cfg)

		m := incremental.New(fuzzWorld.KB, fuzzWorld.Lex, cfg)
		for i, epoch := range [][]corpus.Document{docs[:a], docs[a:b], docs[b:]} {
			if _, err := m.Ingest(context.Background(), epoch); err != nil {
				t.Fatalf("epoch %d: %v", i, err)
			}
		}
		if diffs := testkit.DiffResults(m.Snapshot(), batch); len(diffs) > 0 {
			t.Errorf("cuts (%d, %d) of %d docs: incremental diverges from batch:\n  %s",
				a, b, len(docs), strings.Join(diffs, "\n  "))
		}
	})
}
