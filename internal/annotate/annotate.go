// Package annotate implements the annotation layer of the Surveyor
// architecture: the paper's extraction consumes a web snapshot that "was
// preprocessed using NLP tools and contains annotations mapping text
// mentions of entities to our knowledge base" (Section 3). This package
// produces that representation — per sentence: tagged tokens, the typed
// dependency tree, and the resolved entity mentions — so extraction (and
// extraction-version sweeps like Table 4) can run repeatedly without
// re-parsing, exactly as the paper's pipeline separates annotation from
// extraction.
package annotate

import (
	"repro/internal/corpus"
	"repro/internal/kb"
	"repro/internal/nlp/depparse"
	"repro/internal/nlp/lexicon"
	"repro/internal/nlp/pos"
	"repro/internal/nlp/token"
	"repro/internal/tagger"
)

// Sentence is one fully annotated sentence.
type Sentence struct {
	Tokens   []pos.Tagged
	Tree     *depparse.Tree
	Mentions []tagger.Mention
}

// Document is an annotated web document.
type Document struct {
	URL      string
	Domain   string
	Author   int
	Sentence []Sentence
}

// Annotator runs the NLP front end. It is immutable and safe for
// concurrent use.
type Annotator struct {
	pos    *pos.Tagger
	parser *depparse.Parser
	linker *tagger.Tagger
}

// New builds an annotator over the knowledge base and lexicon.
func New(base *kb.KB, lex *lexicon.Lexicon) *Annotator {
	return &Annotator{
		pos:    pos.New(lex),
		parser: depparse.New(lex),
		linker: tagger.New(base, lex),
	}
}

// Annotate processes one raw document. Sentences without any entity
// mention keep their tokens but skip parsing (extraction cannot use them,
// and the pipeline's dominant cost is parsing).
func (a *Annotator) Annotate(doc corpus.Document) Document {
	out := Document{URL: doc.URL, Domain: doc.Domain, Author: doc.Author}
	for _, sent := range token.SplitSentences(doc.Text) {
		tagged := a.pos.Tag(sent)
		mentions := a.linker.Tag(tagged)
		as := Sentence{Tokens: tagged, Mentions: mentions}
		if len(mentions) > 0 {
			as.Tree = a.parser.Parse(tagged)
		}
		out.Sentence = append(out.Sentence, as)
	}
	return out
}

// AnnotateAll processes a corpus slice sequentially (the pipeline package
// provides the parallel variant).
func (a *Annotator) AnnotateAll(docs []corpus.Document) []Document {
	out := make([]Document, len(docs))
	for i, d := range docs {
		out[i] = a.Annotate(d)
	}
	return out
}
