package annotate

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/kb"
	"repro/internal/nlp/depparse"
	"repro/internal/nlp/lexicon"
	"repro/internal/nlp/pos"
	"repro/internal/nlp/token"
	"repro/internal/stats"
	"repro/internal/tagger"
)

var codecRels = []depparse.Label{
	depparse.RootLabel, depparse.Nsubj, depparse.Amod, depparse.Cop,
	depparse.Conj, depparse.Prep, depparse.Advmod, depparse.Neg, depparse.Dep,
}

// randomDocument builds a structurally valid annotated document straight
// from the RNG: arbitrary strings, tags, spans, tree shapes and mentions,
// without going through the NLP pipeline. Empty slices are left nil so a
// decoded copy is reflect.DeepEqual to the original.
func randomDocument(rng *stats.RNG) Document {
	doc := Document{
		URL:    fmt.Sprintf("http://site%d.example/p/%d", rng.Intn(50), rng.Intn(1000)),
		Domain: fmt.Sprintf("site%d.example", rng.Intn(50)),
		Author: rng.Intn(200),
	}
	for s := rng.Intn(4); s > 0; s-- {
		doc.Sentence = append(doc.Sentence, randomSentence(rng))
	}
	return doc
}

func randomSentence(rng *stats.RNG) Sentence {
	var sent Sentence
	nTok := rng.Intn(9)
	pos := 0
	for i := 0; i < nTok; i++ {
		text := randomWord(rng)
		start := pos + rng.Intn(2)
		end := start + len(text)
		pos = end
		sent.Tokens = append(sent.Tokens, randomToken(rng, text, start, end))
	}
	if rng.Bernoulli(0.8) {
		sent.Tree = randomTree(rng, sent.Tokens)
	}
	for m := rng.Intn(3); m > 0 && nTok > 0; m-- {
		start := rng.Intn(nTok)
		end := start + 1 + rng.Intn(nTok-start)
		sent.Mentions = append(sent.Mentions, tagger.Mention{
			Entity: kb.EntityID(rng.Intn(500)),
			Start:  start,
			End:    end,
			Head:   end - 1,
		})
	}
	return sent
}

func randomToken(rng *stats.RNG, text string, start, end int) pos.Tagged {
	// token.New fills the lowercase cache, matching what the decoder emits
	// so DeepEqual sees identical tokens on both sides of the round trip.
	return pos.Tagged{
		Token: token.New(text, start, end),
		Tag:   lexicon.Tag(rng.IntRange(int(lexicon.Other), int(lexicon.Mark))),
	}
}

func randomWord(rng *stats.RNG) string {
	words := []string{"cute", "kittens", "are", "not", "San", "Francisco",
		"\x00\xff", "naïve", "o'clock", "..."}
	return words[rng.Intn(len(words))]
}

// randomTree draws a random head assignment where every non-root head
// points strictly left, which guarantees a connected acyclic tree.
func randomTree(rng *stats.RNG, tokens []pos.Tagged) *depparse.Tree {
	heads := make([]int, len(tokens))
	rels := make([]depparse.Label, len(tokens))
	root := -1
	for i := range tokens {
		if i == 0 {
			heads[i], rels[i], root = -1, depparse.RootLabel, 0
			continue
		}
		heads[i] = rng.Intn(i)
		rels[i] = codecRels[rng.Intn(len(codecRels))]
	}
	return depparse.Assemble(tokens, heads, rels, root)
}

// TestCodecRoundTripRandom is the codec's property test: any structurally
// valid batch of documents must survive Write→Read bit-exactly, including
// tree shape (compared via DeepEqual, which sees the unexported child
// index rebuilt by Assemble).
func TestCodecRoundTripRandom(t *testing.T) {
	for seed := uint64(1); seed <= 30; seed++ {
		rng := stats.NewRNG(seed)
		docs := make([]Document, rng.IntRange(1, 6))
		for i := range docs {
			docs[i] = randomDocument(rng)
		}
		var buf bytes.Buffer
		if err := Write(&buf, docs); err != nil {
			t.Fatalf("seed %d: write: %v", seed, err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("seed %d: read back: %v", seed, err)
		}
		if !reflect.DeepEqual(docs, got) {
			t.Fatalf("seed %d: round trip changed the documents\nwrote %+v\nread  %+v", seed, docs, got)
		}
	}
}

// TestCodecRejectsCorruptTrees pins the decoder hardening: a tree whose
// stored heads point outside the sentence must fail with an error instead
// of panicking in Assemble.
func TestCodecRejectsCorruptTrees(t *testing.T) {
	rng := stats.NewRNG(99)
	var doc Document
	for len(doc.Sentence) == 0 || doc.Sentence[0].Tree == nil || len(doc.Sentence[0].Tokens) < 2 {
		doc = randomDocument(rng)
	}
	var buf bytes.Buffer
	if err := Write(&buf, []Document{doc}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Walk the encoding byte by byte, flipping each byte to a large varint
	// limb; every outcome must be a clean error or a successful decode.
	corrupted := 0
	for i := len(codecHeader); i < len(data); i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x7f
		if _, err := Read(bytes.NewReader(mut)); err != nil {
			corrupted++
		}
	}
	if corrupted == 0 {
		t.Fatal("no byte flip produced a decode error; corruption checks look dead")
	}
}
