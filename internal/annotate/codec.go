package annotate

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/kb"
	"repro/internal/nlp/depparse"
	"repro/internal/nlp/lexicon"
	"repro/internal/nlp/pos"
	"repro/internal/nlp/token"
	"repro/internal/tagger"
)

// The binary annotation format, versioned by the header. All integers are
// varints; strings are length-prefixed. Head indices are stored offset by
// one so the root's -1 fits in an unsigned varint.
const codecHeader = "SVANN1\n"

// Decode-side sanity limits. A forged or corrupt stream must not cost
// unbounded memory, so every decoded count is checked against a named
// cap before it sizes an allocation or drives a growth loop.
const (
	maxDocCount  = 1 << 28
	maxStringLen = 1 << 20
	maxSentences = 1 << 24
	maxTokens    = 1 << 20
	maxMentions  = 1 << 20
)

// Write serialises annotated documents.
func Write(w io.Writer, docs []Document) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(codecHeader); err != nil {
		return fmt.Errorf("annotate: write header: %w", err)
	}
	e := &encoder{w: bw}
	e.uvarint(uint64(len(docs)))
	for i := range docs {
		e.document(&docs[i])
	}
	if e.err != nil {
		return fmt.Errorf("annotate: write: %w", e.err)
	}
	return bw.Flush()
}

// Read deserialises documents written by Write.
func Read(r io.Reader) ([]Document, error) {
	br := bufio.NewReader(r)
	header := make([]byte, len(codecHeader))
	if _, err := io.ReadFull(br, header); err != nil || string(header) != codecHeader {
		return nil, fmt.Errorf("annotate: bad header %q: %w", header, err)
	}
	d := &decoder{r: br}
	n := d.uvarint()
	if n > maxDocCount {
		return nil, fmt.Errorf("annotate: implausible document count %d", n)
	}
	// The count is untrusted until that many documents actually decode, so
	// cap the preallocation: a forged header must not cost gigabytes.
	docs := make([]Document, 0, min(n, 4096))
	for i := uint64(0); i < n; i++ {
		doc := d.document()
		if d.err != nil {
			return nil, fmt.Errorf("annotate: read document %d: %w", i, d.err)
		}
		docs = append(docs, doc)
	}
	return docs, nil
}

type encoder struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

func (e *encoder) uvarint(v uint64) {
	if e.err != nil {
		return
	}
	n := binary.PutUvarint(e.buf[:], v)
	_, e.err = e.w.Write(e.buf[:n])
}

func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	if e.err == nil {
		_, e.err = e.w.WriteString(s)
	}
}

func (e *encoder) document(d *Document) {
	e.str(d.URL)
	e.str(d.Domain)
	e.uvarint(uint64(d.Author))
	e.uvarint(uint64(len(d.Sentence)))
	for i := range d.Sentence {
		e.sentence(&d.Sentence[i])
	}
}

func (e *encoder) sentence(s *Sentence) {
	e.uvarint(uint64(len(s.Tokens)))
	for _, t := range s.Tokens {
		e.str(t.Text)
		e.uvarint(uint64(t.Tag))
		e.uvarint(uint64(t.Start))
		e.uvarint(uint64(t.End))
	}
	if s.Tree == nil {
		e.uvarint(0)
	} else {
		e.uvarint(1)
		e.uvarint(uint64(s.Tree.Root() + 1))
		for _, n := range s.Tree.Nodes {
			e.uvarint(uint64(n.Head + 1))
			e.str(string(n.Rel))
		}
	}
	e.uvarint(uint64(len(s.Mentions)))
	for _, m := range s.Mentions {
		e.uvarint(uint64(m.Entity))
		e.uvarint(uint64(m.Start))
		e.uvarint(uint64(m.End))
		e.uvarint(uint64(m.Head))
	}
}

type decoder struct {
	r   *bufio.Reader
	err error
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		d.err = err
	}
	return v
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > maxStringLen {
		d.err = fmt.Errorf("string length %d too large", n)
		return ""
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(d.r, buf); err != nil {
		d.err = err
		return ""
	}
	return string(buf)
}

func (d *decoder) document() Document {
	var doc Document
	doc.URL = d.str()
	doc.Domain = d.str()
	doc.Author = int(d.uvarint())
	nSents := d.uvarint()
	if d.err != nil || nSents > maxSentences {
		if d.err == nil {
			d.err = fmt.Errorf("implausible sentence count %d", nSents)
		}
		return doc
	}
	for i := uint64(0); i < nSents; i++ {
		doc.Sentence = append(doc.Sentence, d.sentence())
		if d.err != nil {
			return doc
		}
	}
	return doc
}

func (d *decoder) sentence() Sentence {
	var s Sentence
	nTok := d.uvarint()
	if d.err != nil || nTok > maxTokens {
		if d.err == nil {
			d.err = fmt.Errorf("implausible token count %d", nTok)
		}
		return s
	}
	for i := uint64(0); i < nTok; i++ {
		text := d.str()
		tag := lexicon.Tag(d.uvarint())
		start := int(d.uvarint())
		end := int(d.uvarint())
		// token.New fills the lowercase cache, so decoded documents are
		// byte-identical to freshly annotated ones.
		s.Tokens = append(s.Tokens, pos.Tagged{
			Token: token.New(text, start, end),
			Tag:   tag,
		})
	}
	if d.uvarint() == 1 && d.err == nil {
		root := int(d.uvarint()) - 1
		heads := make([]int, len(s.Tokens))
		rels := make([]depparse.Label, len(s.Tokens))
		for i := range s.Tokens {
			heads[i] = int(d.uvarint()) - 1
			rels[i] = depparse.Label(d.str())
		}
		if d.err == nil {
			// Assemble indexes by head, so corrupt indices must be
			// rejected here rather than panic downstream.
			if root < -1 || root >= len(s.Tokens) {
				d.err = fmt.Errorf("tree root %d out of range for %d tokens", root, len(s.Tokens))
				return s
			}
			for i, h := range heads {
				if h < -1 || h >= len(s.Tokens) {
					d.err = fmt.Errorf("node %d head %d out of range for %d tokens", i, h, len(s.Tokens))
					return s
				}
			}
			s.Tree = depparse.Assemble(s.Tokens, heads, rels, root)
		}
	}
	nMen := d.uvarint()
	if d.err != nil || nMen > maxMentions {
		if d.err == nil {
			d.err = fmt.Errorf("implausible mention count %d", nMen)
		}
		return s
	}
	for i := uint64(0); i < nMen; i++ {
		s.Mentions = append(s.Mentions, tagger.Mention{
			Entity: kb.EntityID(d.uvarint()),
			Start:  int(d.uvarint()),
			End:    int(d.uvarint()),
			Head:   int(d.uvarint()),
		})
	}
	return s
}
