package annotate

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/extract"
	"repro/internal/kb"
	"repro/internal/nlp/lexicon"
)

func fixture() (*kb.KB, *lexicon.Lexicon, *Annotator) {
	base := kb.New()
	base.Add(kb.Entity{Name: "kitten", Type: "animal"})
	base.Add(kb.Entity{Name: "San Francisco", Type: "city", Proper: true})
	lex := lexicon.Default()
	base.RegisterLexicon(lex)
	return base, lex, New(base, lex)
}

func TestAnnotateBasics(t *testing.T) {
	_, _, a := fixture()
	doc := a.Annotate(corpus.Document{
		URL:    "http://x.example.com/1",
		Domain: "com",
		Author: 7,
		Text:   "Kittens are cute. The weather was awful.",
	})
	if doc.URL == "" || doc.Domain != "com" || doc.Author != 7 {
		t.Fatalf("metadata lost: %+v", doc)
	}
	if len(doc.Sentence) != 2 {
		t.Fatalf("sentences = %d", len(doc.Sentence))
	}
	s0 := doc.Sentence[0]
	if len(s0.Mentions) != 1 {
		t.Fatalf("mentions in sentence 0: %v", s0.Mentions)
	}
	if s0.Tree == nil {
		t.Fatal("mention-bearing sentence should be parsed")
	}
	// Sentence without mentions skips parsing but keeps tokens.
	s1 := doc.Sentence[1]
	if s1.Tree != nil {
		t.Fatal("mention-free sentence should not be parsed")
	}
	if len(s1.Tokens) == 0 {
		t.Fatal("tokens must be kept either way")
	}
}

func TestAnnotatedExtractionMatchesDirect(t *testing.T) {
	base, lex, a := fixture()
	_ = base
	ex := extract.NewVersion(lex, extract.V4)
	doc := a.Annotate(corpus.Document{Text: "San Francisco is not a big city. Kittens are cute."})
	total := 0
	for _, s := range doc.Sentence {
		if s.Tree == nil {
			continue
		}
		total += len(ex.Extract(s.Tree, s.Mentions))
	}
	if total != 2 {
		t.Fatalf("extractions from annotations = %d, want 2", total)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	_, _, a := fixture()
	docs := a.AnnotateAll([]corpus.Document{
		{URL: "http://a.example.com", Domain: "com", Author: 1,
			Text: "San Francisco is not a big city. I love it."},
		{URL: "http://b.example.cn", Domain: "cn", Author: 2,
			Text: "Kittens are cute and lovely animals."},
		{URL: "http://c.example.com", Domain: "com", Author: 3, Text: ""},
	})

	var buf bytes.Buffer
	if err := Write(&buf, docs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(docs) {
		t.Fatalf("docs = %d, want %d", len(got), len(docs))
	}
	for di := range docs {
		want, have := docs[di], got[di]
		if want.URL != have.URL || want.Domain != have.Domain || want.Author != have.Author {
			t.Fatalf("doc %d metadata mismatch", di)
		}
		if len(want.Sentence) != len(have.Sentence) {
			t.Fatalf("doc %d sentences %d vs %d", di, len(want.Sentence), len(have.Sentence))
		}
		for si := range want.Sentence {
			ws, hs := want.Sentence[si], have.Sentence[si]
			if len(ws.Tokens) != len(hs.Tokens) {
				t.Fatalf("token count mismatch")
			}
			for ti := range ws.Tokens {
				if ws.Tokens[ti].Text != hs.Tokens[ti].Text ||
					ws.Tokens[ti].Tag != hs.Tokens[ti].Tag ||
					ws.Tokens[ti].Start != hs.Tokens[ti].Start ||
					ws.Tokens[ti].End != hs.Tokens[ti].End {
					t.Fatalf("token %d mismatch: %+v vs %+v", ti, ws.Tokens[ti], hs.Tokens[ti])
				}
			}
			if (ws.Tree == nil) != (hs.Tree == nil) {
				t.Fatalf("tree presence mismatch")
			}
			if ws.Tree != nil {
				if ws.Tree.Root() != hs.Tree.Root() {
					t.Fatalf("root mismatch")
				}
				for ni := range ws.Tree.Nodes {
					wn, hn := ws.Tree.Nodes[ni], hs.Tree.Nodes[ni]
					if wn.Head != hn.Head || wn.Rel != hn.Rel {
						t.Fatalf("node %d: %+v vs %+v", ni, wn, hn)
					}
				}
			}
			if len(ws.Mentions) != len(hs.Mentions) {
				t.Fatalf("mention count mismatch")
			}
			for mi := range ws.Mentions {
				if ws.Mentions[mi] != hs.Mentions[mi] {
					t.Fatalf("mention %d mismatch", mi)
				}
			}
		}
	}
}

func TestCodecExtractionEquivalence(t *testing.T) {
	// The real invariant: extraction over deserialised annotations yields
	// exactly the same statements as over fresh ones.
	snapKB := kb.Default(1)
	lex2 := lexicon.Default()
	snapKB.RegisterLexicon(lex2)
	gen := corpus.NewGenerator(snapKB, corpus.Table2Specs(), corpus.Config{Seed: 9, Scale: 0.05})
	snap := gen.Generate()
	a := New(snapKB, lex2)

	docs := a.AnnotateAll(snap.Documents)
	var buf bytes.Buffer
	if err := Write(&buf, docs); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}

	ex := extract.NewVersion(lex2, extract.V4)
	count := func(ds []Document) map[extract.Statement]int {
		m := map[extract.Statement]int{}
		for _, d := range ds {
			for _, s := range d.Sentence {
				if s.Tree == nil {
					continue
				}
				for _, st := range ex.Extract(s.Tree, s.Mentions) {
					m[st]++
				}
			}
		}
		return m
	}
	fresh, reread := count(docs), count(loaded)
	if len(fresh) == 0 {
		t.Fatal("no statements extracted at all")
	}
	if len(fresh) != len(reread) {
		t.Fatalf("statement sets differ: %d vs %d", len(fresh), len(reread))
	}
	//lint:allow detmap order-independent multiset-equality assertion; no ordered output is produced
	for k, v := range fresh {
		if reread[k] != v {
			t.Fatalf("statement %+v count %d vs %d", k, v, reread[k])
		}
	}
}

func TestReadRejectsBadHeader(t *testing.T) {
	if _, err := Read(strings.NewReader("NOTANN\n")); err == nil {
		t.Fatal("Read should reject a wrong header")
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	_, _, a := fixture()
	docs := a.AnnotateAll([]corpus.Document{{Text: "Kittens are cute."}})
	var buf bytes.Buffer
	if err := Write(&buf, docs); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{len(data) / 2, len(data) - 1, len(codecHeader) + 1} {
		if _, err := Read(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("Read accepted input truncated at %d", cut)
		}
	}
}

func TestWriteEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d docs from empty write", len(got))
	}
}
