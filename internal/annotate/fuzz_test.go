package annotate

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/stats"
)

// FuzzRead feeds arbitrary bytes to the codec decoder. Read must either
// fail cleanly or produce documents that re-encode and decode to the same
// value (idempotence); it must never panic, which is what the head-range
// validation in the tree decoder guards — Assemble would index out of
// bounds on hostile head values otherwise.
func FuzzRead(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(codecHeader))
	f.Add([]byte("SVANN1\n\x01garbage"))
	for seed := uint64(1); seed <= 4; seed++ {
		rng := stats.NewRNG(seed)
		docs := []Document{randomDocument(rng), randomDocument(rng)}
		var buf bytes.Buffer
		if err := Write(&buf, docs); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		docs, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, docs); err != nil {
			t.Fatalf("re-encoding decoded documents: %v", err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("decoding our own encoding: %v", err)
		}
		if !reflect.DeepEqual(docs, again) {
			t.Fatalf("decode/encode/decode not idempotent\nfirst  %+v\nsecond %+v", docs, again)
		}
	})
}
