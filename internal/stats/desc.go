package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. xs need not be sorted.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// Percentiles returns the requested percentiles of xs, sorting only once.
func Percentiles(xs []float64, ps []float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		return out
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	for i, p := range ps {
		out[i] = percentileSorted(sorted, p)
	}
	return out
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It returns 0 when either series is constant or the lengths differ.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation between xs and ys —
// Pearson correlation of the rank-transformed series, with average ranks
// for ties. Used to evaluate how well predicted polarity tracks an
// objective attribute (Figures 3 and 13).
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

// Ranks converts values to 1-based ranks, assigning tied values their
// average rank.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	i := 0
	for i < n {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Histogram counts xs into nbins equal-width bins spanning [min, max].
// Values outside the range are clamped into the first/last bin.
func Histogram(xs []float64, min, max float64, nbins int) []int {
	counts := make([]int, nbins)
	if nbins == 0 || max <= min {
		return counts
	}
	width := (max - min) / float64(nbins)
	for _, x := range xs {
		b := int((x - min) / width)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts
}
