package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestRNGZeroSeedNotDegenerate(t *testing.T) {
	r := NewRNG(0)
	var prev uint64
	constant := true
	for i := 0; i < 10; i++ {
		v := r.Uint64()
		if i > 0 && v != prev {
			constant = false
		}
		prev = v
	}
	if constant {
		t.Fatal("seed 0 produced a constant stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v, want ~0.5", mean)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(3)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("parent and split child produced %d identical draws", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(5)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) hit only %d distinct values in 1000 draws", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(-3, 4)
		if v < -3 || v > 4 {
			t.Fatalf("IntRange out of bounds: %d", v)
		}
	}
	if got := r.IntRange(5, 5); got != 5 {
		t.Fatalf("degenerate IntRange = %d, want 5", got)
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := NewRNG(13)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	f := float64(hits) / n
	if math.Abs(f-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency = %v", f)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(17)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := NewRNG(19)
	xs := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, x := range xs {
		sum += x
	}
	if sum != 21 {
		t.Fatalf("shuffle changed multiset, sum = %d", sum)
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(23)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Normal(10, 3)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("normal mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Fatalf("normal stddev = %v, want ~3", math.Sqrt(variance))
	}
}

func TestPoissonMean(t *testing.T) {
	for _, lambda := range []float64{0.5, 3, 20, 100, 500} {
		r := NewRNG(uint64(lambda * 100))
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(lambda)
		}
		mean := float64(sum) / n
		tol := 4 * math.Sqrt(lambda/n) * math.Sqrt(lambda) // generous
		if tol < 0.05 {
			tol = 0.05
		}
		if math.Abs(mean-lambda) > math.Max(tol, lambda*0.03) {
			t.Fatalf("Poisson(%v) mean = %v", lambda, mean)
		}
	}
}

func TestPoissonEdge(t *testing.T) {
	r := NewRNG(1)
	if got := r.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d", got)
	}
	if got := r.Poisson(-1); got != 0 {
		t.Fatalf("Poisson(-1) = %d", got)
	}
}

func TestBinomialMeanAndBounds(t *testing.T) {
	cases := []struct {
		n int
		p float64
	}{{10, 0.5}, {100, 0.01}, {1000, 0.02}, {1000, 0.6}}
	for _, c := range cases {
		r := NewRNG(uint64(c.n))
		const trials = 20000
		sum := 0
		for i := 0; i < trials; i++ {
			k := r.Binomial(c.n, c.p)
			if k < 0 || k > c.n {
				t.Fatalf("Binomial(%d,%v) out of bounds: %d", c.n, c.p, k)
			}
			sum += k
		}
		mean := float64(sum) / trials
		want := float64(c.n) * c.p
		if math.Abs(mean-want) > math.Max(0.05, want*0.05) {
			t.Fatalf("Binomial(%d,%v) mean = %v, want ~%v", c.n, c.p, mean, want)
		}
	}
}

func TestBinomialEdges(t *testing.T) {
	r := NewRNG(2)
	if got := r.Binomial(10, 0); got != 0 {
		t.Fatalf("Binomial(10,0) = %d", got)
	}
	if got := r.Binomial(10, 1); got != 10 {
		t.Fatalf("Binomial(10,1) = %d", got)
	}
	if got := r.Binomial(0, 0.5); got != 0 {
		t.Fatalf("Binomial(0,.5) = %d", got)
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(100, 1.1)
	r := NewRNG(31)
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Draw(r)]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("zipf rank 0 (%d) not more frequent than rank 50 (%d)", counts[0], counts[50])
	}
	if counts[0] < n/20 {
		t.Fatalf("zipf rank 0 too rare: %d", counts[0])
	}
}

func TestZipfWeightsSumToOne(t *testing.T) {
	z := NewZipf(50, 0.8)
	sum := 0.0
	for i := 0; i < 50; i++ {
		sum += z.Weight(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("zipf weights sum = %v", sum)
	}
}

func TestZipfDrawInRangeProperty(t *testing.T) {
	z := NewZipf(13, 1.0)
	r := NewRNG(99)
	f := func(_ uint8) bool {
		v := z.Draw(r)
		return v >= 0 && v < 13
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
