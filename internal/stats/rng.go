// Package stats provides the deterministic random-number generation,
// probability distributions, and descriptive statistics used across the
// Surveyor reproduction.
//
// Everything in this package is deliberately self-contained and seedable so
// that corpus generation, crowd simulation, and experiments are exactly
// reproducible run-to-run and platform-to-platform.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator based on
// splitmix64 seeding of an xoshiro256** state. It is NOT safe for concurrent
// use; create one per goroutine (see Split).
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from the given seed. Distinct seeds give
// statistically independent streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 to expand the seed into the full state, avoiding the
	// all-zero state xoshiro cannot escape.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives a new independent generator from this one. The parent
// advances; the child starts a fresh stream. Useful to hand one RNG per
// worker goroutine while keeping global determinism.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1342543de82ef95)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n)) // modulo bias negligible for our n
}

// IntRange returns a uniform int in [lo, hi]. It panics if hi < lo.
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("stats: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomly permutes n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Normal returns a normally distributed value with the given mean and
// standard deviation (Box-Muller, single value per call).
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Poisson draws from a Poisson distribution with mean lambda. Uses Knuth's
// multiplication method for small lambda and a normal approximation with
// continuity correction for large lambda (error negligible at lambda > 64
// for our counting workloads).
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 64 {
		v := r.Normal(lambda, math.Sqrt(lambda))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Binomial draws from a Binomial(n, p) distribution. For large n it uses the
// Poisson or normal approximation as appropriate.
func (r *RNG) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	np := float64(n) * p
	switch {
	case n <= 64:
		k := 0
		for i := 0; i < n; i++ {
			if r.Float64() < p {
				k++
			}
		}
		return k
	case np < 32 && p < 0.05:
		k := r.Poisson(np)
		if k > n {
			return n
		}
		return k
	default:
		v := r.Normal(np, math.Sqrt(np*(1-p)))
		if v < 0 {
			return 0
		}
		if v > float64(n) {
			return n
		}
		return int(v + 0.5)
	}
}

// Zipf samples ranks in [0, n) with probability proportional to
// 1/(rank+1)^s. The sampler precomputes the CDF once; use NewZipf for
// repeated draws.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a Zipf sampler over n ranks with exponent s > 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("stats: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf}
}

// Draw returns a rank in [0, n), lower ranks being more likely.
func (z *Zipf) Draw(r *RNG) int {
	u := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Weight returns the probability mass of the given rank.
func (z *Zipf) Weight(rank int) float64 {
	if rank == 0 {
		return z.cdf[0]
	}
	return z.cdf[rank] - z.cdf[rank-1]
}
