package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := StdDev(xs); math.Abs(got-2) > 1e-12 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
	if got := StdDev(nil); got != 0 {
		t.Fatalf("StdDev(nil) = %v", got)
	}
}

func TestPercentileBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 50); math.Abs(got-5) > 1e-12 {
		t.Fatalf("P50 of {0,10} = %v, want 5", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentilesMatchesSingle(t *testing.T) {
	xs := []float64{9, 1, 5, 3, 7, 2, 8}
	ps := []float64{10, 25, 50, 75, 95}
	multi := Percentiles(xs, ps)
	for i, p := range ps {
		if single := Percentile(xs, p); math.Abs(multi[i]-single) > 1e-12 {
			t.Fatalf("Percentiles[%v] = %v, Percentile = %v", p, multi[i], single)
		}
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p1 := float64(a % 101)
		p2 := float64(b % 101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return Percentile(xs, p1) <= Percentile(xs, p2)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if got := Pearson(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Pearson = %v, want 1", got)
	}
	neg := []float64{8, 6, 4, 2}
	if got := Pearson(xs, neg); math.Abs(got+1) > 1e-12 {
		t.Fatalf("Pearson = %v, want -1", got)
	}
}

func TestPearsonConstantSeries(t *testing.T) {
	if got := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Fatalf("Pearson with constant series = %v, want 0", got)
	}
}

func TestPearsonLengthMismatch(t *testing.T) {
	if got := Pearson([]float64{1, 2}, []float64{1}); got != 0 {
		t.Fatalf("Pearson mismatched lengths = %v, want 0", got)
	}
}

func TestPearsonBoundedProperty(t *testing.T) {
	r := NewRNG(44)
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.Intn(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.Normal(0, 1)
			ys[i] = r.Normal(0, 1)
		}
		c := Pearson(xs, ys)
		if c < -1-1e-9 || c > 1+1e-9 {
			t.Fatalf("Pearson out of [-1,1]: %v", c)
		}
	}
}

func TestSpearmanMonotone(t *testing.T) {
	xs := []float64{1, 10, 100, 1000}
	ys := []float64{1, 2, 3, 4} // monotone but nonlinear relation
	if got := Spearman(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Spearman = %v, want 1", got)
	}
}

func TestRanksWithTies(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestRanksSumProperty(t *testing.T) {
	// Ranks always sum to n(n+1)/2 regardless of ties.
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) {
				xs = append(xs, v)
			}
		}
		n := len(xs)
		sum := 0.0
		for _, r := range Ranks(xs) {
			sum += r
		}
		return math.Abs(sum-float64(n*(n+1))/2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.6, 0.9, 1.5, -2}
	counts := Histogram(xs, 0, 1, 2)
	// -2 clamps to bin 0; 1.5 clamps to bin 1.
	if counts[0] != 3 || counts[1] != 3 {
		t.Fatalf("Histogram = %v", counts)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	if got := Histogram([]float64{1, 2}, 5, 5, 3); got[0] != 0 {
		t.Fatalf("degenerate histogram = %v", got)
	}
}

func TestPercentileAgainstSort(t *testing.T) {
	r := NewRNG(55)
	xs := make([]float64, 1001)
	for i := range xs {
		xs[i] = r.Float64() * 100
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if got := Percentile(xs, 50); math.Abs(got-sorted[500]) > 1e-12 {
		t.Fatalf("median = %v, want %v", got, sorted[500])
	}
}
