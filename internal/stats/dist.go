package stats

import "math"

// logFactTable caches log(n!) for small n — evidence counters are almost
// always tiny, and Lgamma dominates the EM inner loop otherwise. Entries
// are computed by the exact same Lgamma call the fallback uses, so the
// cache is bit-identical to the uncached path.
var logFactTable = func() [256]float64 {
	var t [256]float64
	for i := range t {
		lg, _ := math.Lgamma(float64(i) + 1)
		t[i] = lg
	}
	return t
}()

// LogFactorial returns log(n!) using math.Lgamma. Exact to floating
// precision for all n >= 0.
func LogFactorial(n int) float64 {
	if n < 0 {
		panic("stats: LogFactorial of negative n")
	}
	if n < len(logFactTable) {
		return logFactTable[n]
	}
	lg, _ := math.Lgamma(float64(n) + 1)
	return lg
}

// LogPoissonPMF returns log Pr(X = k) for X ~ Poisson(lambda).
//
// The lambda == 0 boundary is handled explicitly: a Poisson with zero rate
// places all mass on k == 0. This case arises in the Surveyor model when a
// fitted emission probability collapses to zero (for example, no negative
// statement was ever observed for entities with positive dominant opinion).
func LogPoissonPMF(k int, lambda float64) float64 {
	if k < 0 {
		return math.Inf(-1)
	}
	if lambda <= 0 {
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	return float64(k)*math.Log(lambda) - lambda - LogFactorial(k)
}

// PoissonPMF returns Pr(X = k) for X ~ Poisson(lambda).
func PoissonPMF(k int, lambda float64) float64 {
	return math.Exp(LogPoissonPMF(k, lambda))
}

// LogBinomialPMF returns log Pr(X = k) for X ~ Binomial(n, p).
func LogBinomialPMF(k, n int, p float64) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if p <= 0 {
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	if p >= 1 {
		if k == n {
			return 0
		}
		return math.Inf(-1)
	}
	return LogFactorial(n) - LogFactorial(k) - LogFactorial(n-k) +
		float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
}

// LogMultinomialTrinomialPMF returns log Pr(A = a, B = b) where (A, B,
// n-a-b) ~ Multinomial(n; pa, pb, 1-pa-pb). This is the exact distribution
// of the statement counters in the Surveyor model before the Poisson
// approximation (Section 5.2); it is retained for the ablation comparing the
// approximation against the exact posterior.
func LogMultinomialTrinomialPMF(a, b, n int, pa, pb float64) float64 {
	if a < 0 || b < 0 || a+b > n {
		return math.Inf(-1)
	}
	rest := 1 - pa - pb
	lp := LogFactorial(n) - LogFactorial(a) - LogFactorial(b) - LogFactorial(n-a-b)
	term := func(k int, p float64) float64 {
		if k == 0 {
			return 0
		}
		if p <= 0 {
			return math.Inf(-1)
		}
		return float64(k) * math.Log(p)
	}
	return lp + term(a, pa) + term(b, pb) + term(n-a-b, rest)
}

// LogSumExp returns log(sum_i exp(xs[i])) computed stably.
func LogSumExp(xs ...float64) float64 {
	maxv := math.Inf(-1)
	for _, x := range xs {
		if x > maxv {
			maxv = x
		}
	}
	if math.IsInf(maxv, -1) {
		return maxv
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Exp(x - maxv)
	}
	return maxv + math.Log(sum)
}

// Sigmoid returns 1/(1+exp(-x)).
func Sigmoid(x float64) float64 {
	return 1 / (1 + math.Exp(-x))
}
