package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLogFactorialSmall(t *testing.T) {
	want := []float64{0, 0, math.Log(2), math.Log(6), math.Log(24), math.Log(120)}
	for n, w := range want {
		if got := LogFactorial(n); math.Abs(got-w) > 1e-12 {
			t.Fatalf("LogFactorial(%d) = %v, want %v", n, got, w)
		}
	}
}

func TestLogFactorialMonotoneProperty(t *testing.T) {
	f := func(n uint8) bool {
		return LogFactorial(int(n)+1) >= LogFactorial(int(n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPoissonPMFSumsToOne(t *testing.T) {
	for _, lambda := range []float64{0.1, 1, 5, 20} {
		sum := 0.0
		for k := 0; k < 200; k++ {
			sum += PoissonPMF(k, lambda)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("Poisson(%v) PMF sums to %v", lambda, sum)
		}
	}
}

func TestPoissonPMFZeroLambda(t *testing.T) {
	if got := PoissonPMF(0, 0); got != 1 {
		t.Fatalf("Pois(0;0) = %v, want 1", got)
	}
	if got := PoissonPMF(3, 0); got != 0 {
		t.Fatalf("Pois(3;0) = %v, want 0", got)
	}
}

func TestLogPoissonPMFNegativeK(t *testing.T) {
	if got := LogPoissonPMF(-1, 2); !math.IsInf(got, -1) {
		t.Fatalf("LogPoissonPMF(-1) = %v, want -Inf", got)
	}
}

func TestPoissonPMFKnownValue(t *testing.T) {
	// Pois(2; 3) = 9 e^-3 / 2 = 0.2240418...
	want := 9 * math.Exp(-3) / 2
	if got := PoissonPMF(2, 3); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Pois(2;3) = %v, want %v", got, want)
	}
}

func TestLogBinomialPMFSumsToOne(t *testing.T) {
	n, p := 30, 0.37
	sum := 0.0
	for k := 0; k <= n; k++ {
		sum += math.Exp(LogBinomialPMF(k, n, p))
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("Binomial PMF sums to %v", sum)
	}
}

func TestLogBinomialPMFEdges(t *testing.T) {
	if got := LogBinomialPMF(0, 10, 0); got != 0 {
		t.Fatalf("Binom(0;10,0) log = %v, want 0", got)
	}
	if got := LogBinomialPMF(10, 10, 1); got != 0 {
		t.Fatalf("Binom(10;10,1) log = %v, want 0", got)
	}
	if got := LogBinomialPMF(11, 10, 0.5); !math.IsInf(got, -1) {
		t.Fatalf("Binom(11;10,.5) = %v, want -Inf", got)
	}
}

func TestTrinomialSumsToOne(t *testing.T) {
	n, pa, pb := 20, 0.2, 0.3
	sum := 0.0
	for a := 0; a <= n; a++ {
		for b := 0; a+b <= n; b++ {
			sum += math.Exp(LogMultinomialTrinomialPMF(a, b, n, pa, pb))
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("trinomial PMF sums to %v", sum)
	}
}

func TestTrinomialOutOfSupport(t *testing.T) {
	if got := LogMultinomialTrinomialPMF(15, 10, 20, 0.1, 0.1); !math.IsInf(got, -1) {
		t.Fatalf("out-of-support trinomial = %v, want -Inf", got)
	}
}

// The Poisson product should approximate the trinomial when n is large
// relative to the counts — the approximation the Surveyor model relies on
// (Section 5.2, citing McDonald 1980).
func TestPoissonApproximatesTrinomial(t *testing.T) {
	n := 100000
	pa, pb := 30.0/float64(n), 5.0/float64(n)
	for _, c := range []struct{ a, b int }{{0, 0}, {25, 3}, {40, 10}} {
		exact := LogMultinomialTrinomialPMF(c.a, c.b, n, pa, pb)
		approx := LogPoissonPMF(c.a, float64(n)*pa) + LogPoissonPMF(c.b, float64(n)*pb)
		if math.Abs(exact-approx) > 0.02 {
			t.Fatalf("counts (%d,%d): exact %v vs poisson %v", c.a, c.b, exact, approx)
		}
	}
}

func TestLogSumExp(t *testing.T) {
	got := LogSumExp(math.Log(1), math.Log(2), math.Log(3))
	if math.Abs(got-math.Log(6)) > 1e-12 {
		t.Fatalf("LogSumExp = %v, want log 6", got)
	}
}

func TestLogSumExpAllNegInf(t *testing.T) {
	if got := LogSumExp(math.Inf(-1), math.Inf(-1)); !math.IsInf(got, -1) {
		t.Fatalf("LogSumExp(-Inf,-Inf) = %v", got)
	}
}

func TestLogSumExpStability(t *testing.T) {
	// Without the max-shift this would overflow.
	got := LogSumExp(1000, 1000)
	want := 1000 + math.Log(2)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("LogSumExp(1000,1000) = %v, want %v", got, want)
	}
}

func TestLogSumExpGEMaxProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 300 || math.Abs(b) > 300 {
			return true
		}
		return LogSumExp(a, b) >= math.Max(a, b)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSigmoid(t *testing.T) {
	if got := Sigmoid(0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Sigmoid(0) = %v", got)
	}
	if Sigmoid(10) < 0.999 || Sigmoid(-10) > 0.001 {
		t.Fatal("sigmoid tails wrong")
	}
}
