package query

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/kb"
	"repro/internal/nlp/lexicon"
	"repro/internal/pipeline"
)

func engine(t *testing.T) (*Engine, *kb.KB) {
	t.Helper()
	base := kb.New()
	animals := []struct {
		name string
		cute float64
	}{
		{"kitten", 0.98}, {"puppy", 0.97}, {"koala", 0.95}, {"panda", 0.9},
		{"otter", 0.88}, {"spider", 0.04}, {"scorpion", 0.03}, {"wasp", 0.05},
		{"rat", 0.2}, {"hyena", 0.15},
	}
	for _, a := range animals {
		base.Add(kb.Entity{Name: a.name, Type: "animal",
			Attributes: map[string]float64{"cuteness": a.cute}})
	}
	lex := lexicon.Default()
	base.RegisterLexicon(lex)
	specs := []corpus.Spec{{
		Type: "animal", Property: "cute", PA: 0.92, NpPlus: 35, NpMinus: 4,
		PosFraction: corpus.SigmoidFraction("cuteness", 0.5, 0.1, 0.95),
	}}
	snap := corpus.NewGenerator(base, specs, corpus.Config{Seed: 8}).Generate()
	res := pipeline.Run(snap.Documents, base, lex, pipeline.Config{Rho: 20})
	return NewEngine(base, lex, res), base
}

func TestParseBasic(t *testing.T) {
	e, _ := engine(t)
	q, err := e.Parse("cute animals")
	if err != nil {
		t.Fatal(err)
	}
	if q.Property != "cute" || q.Type != "animal" || q.Negated {
		t.Fatalf("parsed %+v", q)
	}
}

func TestParseSingularTypeNoun(t *testing.T) {
	e, _ := engine(t)
	q, err := e.Parse("cute animal")
	if err != nil {
		t.Fatal(err)
	}
	if q.Type != "animal" {
		t.Fatalf("parsed %+v", q)
	}
}

func TestParseNegated(t *testing.T) {
	e, _ := engine(t)
	q, err := e.Parse("not cute animals")
	if err != nil {
		t.Fatal(err)
	}
	if !q.Negated || q.Property != "cute" {
		t.Fatalf("parsed %+v", q)
	}
}

func TestParseAdverb(t *testing.T) {
	e, _ := engine(t)
	q, err := e.Parse("very cute animals")
	if err != nil {
		t.Fatal(err)
	}
	if q.Property != "very cute" {
		t.Fatalf("parsed %+v", q)
	}
}

func TestParseErrors(t *testing.T) {
	e, _ := engine(t)
	for _, bad := range []string{
		"",                    // empty
		"animals",             // no adjective
		"cute",                // no type
		"cute spaceships",     // unknown type
		"xyzzy animals",       // unknown adjective
		"cute animals please", // trailing words
	} {
		if _, err := e.Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestRunCuteAnimals(t *testing.T) {
	e, _ := engine(t)
	answers, err := e.Run("cute animals")
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) < 4 {
		t.Fatalf("answers = %v", answers)
	}
	got := map[string]bool{}
	for _, a := range answers {
		got[a.Entity] = true
		if a.Probability <= 0.5 {
			t.Fatalf("answer below threshold: %+v", a)
		}
	}
	for _, want := range []string{"kitten", "puppy", "koala"} {
		if !got[want] {
			t.Errorf("%s missing from cute animals: %v", want, answers)
		}
	}
	for _, not := range []string{"spider", "scorpion"} {
		if got[not] {
			t.Errorf("%s should not be a cute animal", not)
		}
	}
	// Ranking is by probability then evidence.
	for i := 1; i < len(answers); i++ {
		if answers[i].Probability > answers[i-1].Probability+1e-12 {
			t.Fatalf("ranking broken at %d: %v", i, answers)
		}
	}
}

func TestRunNegatedQuery(t *testing.T) {
	e, _ := engine(t)
	answers, err := e.Run("not cute animals")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, a := range answers {
		got[a.Entity] = true
	}
	if !got["spider"] || !got["scorpion"] {
		t.Fatalf("negated query missing clear negatives: %v", answers)
	}
	if got["kitten"] {
		t.Fatal("kitten in 'not cute animals'")
	}
}

func TestExecuteMinProbability(t *testing.T) {
	e, _ := engine(t)
	q, _ := e.Parse("cute animals")
	q.MinProbability = 0.99
	strict, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	q.MinProbability = 0.5
	loose, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(strict) > len(loose) {
		t.Fatalf("raising the bar grew the result: %d vs %d", len(strict), len(loose))
	}
	for _, a := range strict {
		if a.Probability <= 0.99 {
			t.Fatalf("strict result below bar: %+v", a)
		}
	}
}

func TestRunUnmodelledProperty(t *testing.T) {
	e, _ := engine(t)
	if _, err := e.Run("dangerous animals"); err == nil {
		t.Fatal("unmodelled property should error")
	} else if !strings.Contains(err.Error(), "no mined opinions") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestProperties(t *testing.T) {
	e, _ := engine(t)
	props := e.Properties("animal")
	found := false
	for _, p := range props {
		if p == "cute" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Properties(animal) = %v", props)
	}
	if got := e.Properties("city"); len(got) != 0 {
		t.Fatalf("Properties(city) = %v", got)
	}
}
