// Package query implements the application layer the paper motivates in
// its introduction: answering subjective web queries ("big cities",
// "cute animals", "not dangerous sports") from the mined opinion store,
// the way a search engine would answer objective queries from a knowledge
// base. "Upon receipt of a subjective query, the search engine can
// exploit high-confidence entity-property associations and offer links to
// supporting content on the Web as query result" (Section 2).
package query

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/kb"
	"repro/internal/nlp/lexicon"
	"repro/internal/pipeline"
)

// Query is a parsed subjective query.
type Query struct {
	Property string // normalised adjective phrase, e.g. "big" or "very big"
	Type     string // entity type, e.g. "city"
	Negated  bool   // "not dangerous sports"
	// MinProbability filters results; default 0.5 per Algorithm 1, raised
	// to trade recall for precision.
	MinProbability float64
}

// Answer is one ranked result.
type Answer struct {
	Entity      string
	EntityID    kb.EntityID
	Probability float64 // confidence that the (possibly negated) property applies
	Evidence    struct {
		Pos, Neg int64
	}
}

// Engine answers subjective queries against a pipeline result.
type Engine struct {
	kb  *kb.KB
	lex *lexicon.Lexicon
	res *pipeline.Result
}

// NewEngine builds an engine over a completed mining run.
func NewEngine(base *kb.KB, lex *lexicon.Lexicon, res *pipeline.Result) *Engine {
	return &Engine{kb: base, lex: lex, res: res}
}

// Parse interprets a query string of the shape the paper's examples use:
// an optional negation, degree adverbs and an adjective, then a type noun
// — "big cities", "very big cities", "not dangerous sports". The type
// noun may be singular or plural.
func (e *Engine) Parse(q string) (Query, error) {
	fields := strings.Fields(strings.ToLower(strings.TrimSpace(q)))
	if len(fields) < 2 {
		return Query{}, fmt.Errorf("query %q: want [not] [adverb] adjective type", q)
	}
	out := Query{MinProbability: 0.5}
	i := 0
	if e.lex.IsNegation(fields[i]) {
		out.Negated = true
		i++
	}
	var propParts []string
	for i < len(fields)-1 && e.lex.HasTag(fields[i], lexicon.Adv) {
		propParts = append(propParts, fields[i])
		i++
	}
	if i >= len(fields)-1 {
		return Query{}, fmt.Errorf("query %q: no adjective before the type noun", q)
	}
	if !e.lex.HasTag(fields[i], lexicon.Adj) {
		return Query{}, fmt.Errorf("query %q: %q is not a known adjective", q, fields[i])
	}
	propParts = append(propParts, fields[i])
	i++
	typNoun := fields[i]
	if i != len(fields)-1 {
		return Query{}, fmt.Errorf("query %q: trailing words after the type noun", q)
	}
	typ, ok := e.resolveType(typNoun)
	if !ok {
		return Query{}, fmt.Errorf("query %q: unknown entity type %q", q, typNoun)
	}
	out.Property = strings.Join(propParts, " ")
	out.Type = typ
	return out, nil
}

// resolveType maps a singular or plural type noun to a KB type.
func (e *Engine) resolveType(noun string) (string, bool) {
	for _, t := range e.kb.Types() {
		if noun == t || noun == strings.ToLower(kb.Pluralize(t)) {
			return t, true
		}
	}
	return "", false
}

// Run parses and executes a query string.
func (e *Engine) Run(q string) ([]Answer, error) {
	parsed, err := e.Parse(q)
	if err != nil {
		return nil, err
	}
	return e.Execute(parsed)
}

// Execute answers a parsed query: entities of the type whose mined
// dominant opinion matches, ranked by confidence.
func (e *Engine) Execute(q Query) ([]Answer, error) {
	group, ok := e.res.Group(q.Type, q.Property)
	if !ok {
		return nil, fmt.Errorf("no mined opinions for %q %s (below ρ or never stated)",
			q.Property, q.Type)
	}
	minP := q.MinProbability
	if minP < 0.5 {
		minP = 0.5
	}
	var out []Answer
	for _, eo := range group.Entities {
		p := eo.Probability
		if q.Negated {
			p = 1 - p
		}
		if p <= minP || core.Decide(p) != core.OpinionPositive {
			continue
		}
		a := Answer{
			Entity:      e.kb.Get(eo.Entity).Name,
			EntityID:    eo.Entity,
			Probability: p,
		}
		a.Evidence.Pos = eo.Pos
		a.Evidence.Neg = eo.Neg
		out = append(out, a)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Probability != out[b].Probability {
			return out[a].Probability > out[b].Probability
		}
		// Confidence ties (many probabilities saturate at ≈1): more
		// supporting evidence ranks higher, mirroring "offer links to
		// supporting content" — entities with content to link win.
		ea := out[a].Evidence.Pos - out[a].Evidence.Neg
		eb := out[b].Evidence.Pos - out[b].Evidence.Neg
		if ea != eb {
			return ea > eb
		}
		return out[a].Entity < out[b].Entity
	})
	return out, nil
}

// Properties lists the modelled properties for a type — what the engine
// can answer about it.
func (e *Engine) Properties(typ string) []string {
	var out []string
	for i := range e.res.Groups {
		if e.res.Groups[i].Key.Type == typ {
			out = append(out, e.res.Groups[i].Key.Property)
		}
	}
	sort.Strings(out)
	return out
}
