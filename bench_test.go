// Package repro's benchmark harness: one benchmark per table and figure of
// the paper (regenerating the experiment end to end), per-phase pipeline
// benchmarks for the Section-7.1 analysis, and the ablations called out in
// DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dist"
	"repro/internal/evidence"
	"repro/internal/experiments"
	"repro/internal/extract"
	"repro/internal/incremental"
	"repro/internal/kb"
	"repro/internal/nlp/depparse"
	"repro/internal/nlp/lexicon"
	"repro/internal/nlp/pos"
	"repro/internal/nlp/token"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/tagger"
	"repro/internal/wire"
)

// benchScale keeps the experiment benchmarks fast enough to iterate on
// while preserving every qualitative shape.
const benchScale = 0.4

var benchWorld *experiments.World

func world(b *testing.B) *experiments.World {
	b.Helper()
	if benchWorld == nil {
		benchWorld = experiments.BuildEvalWorld(experiments.WorldConfig{Seed: 1, Scale: benchScale})
	}
	return benchWorld
}

// --- One benchmark per table/figure -----------------------------------------

func BenchmarkTable1Extractions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.Table1(); len(rows) < 4 {
			b.Fatalf("table1 rows = %d", len(rows))
		}
	}
}

func BenchmarkTable3Methods(b *testing.B) {
	w := world(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Table3(w)
		if len(res.Rows) != 4 {
			b.Fatal("table3 incomplete")
		}
	}
}

func BenchmarkTable4PatternVersions(b *testing.B) {
	w := world(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.Table4(w, int64(40*benchScale))
		if len(rows) != 4 {
			b.Fatal("table4 incomplete")
		}
	}
}

func BenchmarkTable5RandomSample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table5(experiments.Table5Config{
			Seed: 1, Combos: 40, EntitiesPerType: 40, Rho: 25,
		})
		if len(res.Rows) != 4 {
			b.Fatal("table5 incomplete")
		}
	}
}

func BenchmarkFig3BigCities(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig3(experiments.WorldConfig{Seed: 1, Scale: benchScale, Rho: 20})
		if len(r.Rows) != 461 {
			b.Fatal("fig3 incomplete")
		}
	}
}

func BenchmarkFig6Distributions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig6()
		if r.Example1Posterior <= 0.5 {
			b.Fatal("fig6 posterior wrong")
		}
	}
}

func BenchmarkFig9ExtractionStats(b *testing.B) {
	w := world(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig9(w, int64(40*benchScale))
		if len(r.StatementsPerEntity) == 0 {
			b.Fatal("fig9 empty")
		}
	}
}

func BenchmarkFig10CuteAnimals(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.Fig10(1); len(rows) != 20 {
			b.Fatal("fig10 incomplete")
		}
	}
}

func BenchmarkFig11AgreementHistogram(b *testing.B) {
	w := world(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig11(w)
		if len(r.Cases) == 0 {
			b.Fatal("fig11 empty")
		}
	}
}

func BenchmarkFig12AgreementSweep(b *testing.B) {
	w := world(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig12(w)
		if len(r.Points) == 0 {
			b.Fatal("fig12 empty")
		}
	}
}

func BenchmarkFig13AttributeCorrelation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := experiments.Fig13(experiments.WorldConfig{Seed: 1, Scale: benchScale, Rho: 10})
		if len(rs) != 3 {
			b.Fatal("fig13 incomplete")
		}
	}
}

// --- Section 7.1: pipeline phases -------------------------------------------

// BenchmarkPipelinePhases measures the end-to-end pipeline (extraction,
// grouping, EM) on a fresh snapshot per iteration batch.
func BenchmarkPipelinePhases(b *testing.B) {
	base := kb.Default(1)
	lex := lexicon.Default()
	base.RegisterLexicon(lex)
	snap := corpus.NewGenerator(base, corpus.Table2Specs(),
		corpus.Config{Seed: 2, Scale: benchScale}).Generate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := pipeline.Run(snap.Documents, base, lex, pipeline.Config{Rho: int64(40 * benchScale)})
		if res.TotalStatements == 0 {
			b.Fatal("no statements")
		}
	}
	b.ReportMetric(float64(len(snap.Documents)), "docs/run")
}

// BenchmarkIncrementalRefit contrasts the incremental miner's per-epoch
// cost with the full re-model a batch system pays for every refresh.
// "epoch-trickle" re-ingests a four-document batch into a miner already
// holding the full corpus: extraction of four documents plus EM over only
// the dirty groups. "batch-remodel" re-groups and re-fits the entire
// cumulative store — what refreshing without dirty tracking costs. EM runs
// a fixed iteration budget (tolerance 0) so the measured cost is exactly
// tuples × iterations, free of convergence drift; the refit-tuples/op
// metrics make the proportionality visible next to the time/op gap.
func BenchmarkIncrementalRefit(b *testing.B) {
	base := kb.Default(1)
	lex := lexicon.Default()
	base.RegisterLexicon(lex)
	snap := corpus.NewGenerator(base, corpus.Table2Specs(),
		corpus.Config{Seed: 2, Scale: benchScale}).Generate()
	trickle := snap.Documents[:4]
	cfg := pipeline.Config{Rho: int64(40 * benchScale)}
	cfg.EM = core.DefaultEMConfig()
	cfg.EM.MaxIterations = 10
	cfg.EM.Tolerance = 0

	m := incremental.New(base, lex, cfg)
	if _, err := m.Ingest(context.Background(), snap.Documents); err != nil {
		b.Fatal(err)
	}
	modelled := len(m.Snapshot().Groups)
	if modelled == 0 {
		b.Fatal("bulk ingest modelled no groups")
	}

	b.Run("epoch-trickle", func(b *testing.B) {
		var tuples, groups int64
		for i := 0; i < b.N; i++ {
			st, err := m.Ingest(context.Background(), trickle)
			if err != nil {
				b.Fatal(err)
			}
			tuples += st.RefitTuples
			groups += int64(st.RefitGroups)
		}
		b.ReportMetric(float64(tuples)/float64(b.N), "refit-tuples/op")
		b.ReportMetric(float64(groups)/float64(b.N), "refit-groups/op")
	})
	b.Run("batch-remodel", func(b *testing.B) {
		store := m.Snapshot().Store
		var tuples int64
		for i := 0; i < b.N; i++ {
			res := pipeline.RunFromStore(store, base, cfg)
			if len(res.Groups) < modelled {
				b.Fatal("batch remodel lost groups")
			}
			tuples = 0
			for gi := range res.Groups {
				tuples += int64(len(res.Groups[gi].Entities))
			}
		}
		b.ReportMetric(float64(tuples), "refit-tuples/op")
	})
}

// BenchmarkObsOverhead measures the cost of the observability layer on
// the end-to-end pipeline: "off" runs with no sink attached (every
// recording call hits the nil-receiver fast path), "on" runs with a live
// metrics registry. Benchdiff gates on/off at ≤2% so the hot-path
// instrumentation can never quietly grow a real cost.
func BenchmarkObsOverhead(b *testing.B) {
	base := kb.Default(1)
	lex := lexicon.Default()
	base.RegisterLexicon(lex)
	snap := corpus.NewGenerator(base, corpus.Table2Specs(),
		corpus.Config{Seed: 2, Scale: benchScale}).Generate()
	run := func(b *testing.B, o *obs.RunObs) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			res := pipeline.Run(snap.Documents, base, lex,
				pipeline.Config{Rho: int64(40 * benchScale), Obs: o})
			if res.TotalStatements == 0 {
				b.Fatal("no statements")
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("on", func(b *testing.B) {
		run(b, &obs.RunObs{Metrics: obs.NewRegistry()})
	})
}

// BenchmarkExtractionThroughput isolates the NLP front end: sentences per
// second through tokenize/tag/parse/link/extract.
func BenchmarkExtractionThroughput(b *testing.B) {
	base := kb.Default(1)
	lex := lexicon.Default()
	base.RegisterLexicon(lex)
	snap := corpus.NewGenerator(base, corpus.Table2Specs(),
		corpus.Config{Seed: 3, Scale: 0.2}).Generate()
	pt := pos.New(lex)
	dp := depparse.New(lex)
	et := tagger.New(base, lex)
	ex := extract.NewVersion(lex, extract.V4)

	var sents []token.Sentence
	for _, d := range snap.Documents {
		sents = append(sents, token.SplitSentences(d.Text)...)
	}
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		s := sents[i%len(sents)]
		tagged := pt.Tag(s)
		mentions := et.Tag(tagged)
		tree := dp.Parse(tagged)
		n += len(ex.Extract(tree, mentions))
	}
	if b.N > 1000 && n == 0 {
		b.Fatal("no extractions at all")
	}
}

// BenchmarkEMScaling verifies the Section-6 claim: EM cost is linear in
// the number of entities and independent of the number of mentions.
func BenchmarkEMScaling(b *testing.B) {
	params := core.Params{PA: 0.9, NpPlus: 40, NpMinus: 3}
	for _, m := range []int{100, 1000, 10000} {
		rng := stats.NewRNG(uint64(m))
		opinions := make([]bool, m)
		for i := range opinions {
			opinions[i] = rng.Bernoulli(0.3)
		}
		tuples := core.GenerateTuples(params, opinions, rng)
		b.Run(sizeName("entities", m), func(b *testing.B) {
			cfg := core.DefaultEMConfig()
			cfg.MaxIterations = 10
			cfg.Tolerance = 0
			for i := 0; i < b.N; i++ {
				core.FitEM(tuples, cfg)
			}
		})
	}
	// Mention-count independence: multiply every count by 1000.
	rng := stats.NewRNG(99)
	opinions := make([]bool, 1000)
	for i := range opinions {
		opinions[i] = rng.Bernoulli(0.3)
	}
	tuples := core.GenerateTuples(params, opinions, rng)
	big := make([]core.Tuple, len(tuples))
	for i, c := range tuples {
		big[i] = core.Tuple{Pos: c.Pos * 1000, Neg: c.Neg * 1000}
	}
	b.Run("entities-1000-mentions-x1000", func(b *testing.B) {
		cfg := core.DefaultEMConfig()
		cfg.MaxIterations = 10
		cfg.Tolerance = 0
		for i := 0; i < b.N; i++ {
			core.FitEM(big, cfg)
		}
	})
}

func sizeName(unit string, n int) string {
	switch {
	case n >= 1000:
		return unit + "-" + itoa(n/1000) + "k"
	default:
		return unit + "-" + itoa(n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// --- Ablations (DESIGN.md) ---------------------------------------------------

// BenchmarkAblationPoissonVsMultinomial compares the Poisson-product
// posterior against the exact trinomial.
func BenchmarkAblationPoissonVsMultinomial(b *testing.B) {
	m := core.Model{Params: core.Params{PA: 0.9, NpPlus: 100, NpMinus: 5}}
	tuples := []core.Tuple{
		{Pos: 0, Neg: 0}, {Pos: 60, Neg: 3}, {Pos: 10, Neg: 10},
		{Pos: 90, Neg: 1}, {Pos: 5, Neg: 5},
	}
	b.Run("poisson", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, c := range tuples {
				m.PosteriorPositive(c)
			}
		}
	})
	b.Run("exact-trinomial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, c := range tuples {
				m.PosteriorPositiveExact(c, 1_000_000)
			}
		}
	})
}

// BenchmarkAblationGlobalParams contrasts per-(type,property) models (the
// paper's choice) against a single global model fitted across all groups.
// The metric of interest is the reported accuracy delta, not time.
func BenchmarkAblationGlobalParams(b *testing.B) {
	w := world(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		perGroup, global := perGroupVsGlobalAccuracy(w)
		b.ReportMetric(perGroup, "acc-per-group")
		b.ReportMetric(global, "acc-global")
		if perGroup <= global {
			b.Logf("warning: per-group (%v) did not beat global (%v) this run", perGroup, global)
		}
	}
}

func perGroupVsGlobalAccuracy(w *experiments.World) (perGroup, global float64) {
	// Collect all tuples with their latent truths.
	var all []core.Tuple
	var truths []bool
	var groupOf []int
	for gi := range w.Result.Groups {
		g := &w.Result.Groups[gi]
		spec, ok := w.Snapshot.SpecFor(g.Key.Type, g.Key.Property)
		if !ok {
			continue
		}
		for _, eo := range g.Entities {
			all = append(all, core.Tuple{Pos: int(eo.Pos), Neg: int(eo.Neg)})
			truths = append(truths, spec.LatentTruth(w.KB.Get(eo.Entity), "com"))
			groupOf = append(groupOf, gi)
		}
	}
	if len(all) == 0 {
		return 0, 0
	}
	// Global: one model for everything.
	gm, _ := core.FitEM(all, core.DefaultEMConfig())
	correctG := 0
	for i, c := range all {
		if (core.Decide(gm.PosteriorPositive(c)) == core.OpinionPositive) == truths[i] {
			correctG++
		}
	}
	// Per-group: the pipeline's own fitted models.
	correctP := 0
	for i, c := range all {
		g := &w.Result.Groups[groupOf[i]]
		if (core.Decide(g.Model.PosteriorPositive(c)) == core.OpinionPositive) == truths[i] {
			correctP++
		}
	}
	n := float64(len(all))
	return float64(correctP) / n, float64(correctG) / n
}

// BenchmarkAblationPAGrid measures EM quality/cost against the pA grid
// resolution.
func BenchmarkAblationPAGrid(b *testing.B) {
	rng := stats.NewRNG(7)
	opinions := make([]bool, 2000)
	for i := range opinions {
		opinions[i] = rng.Bernoulli(0.3)
	}
	tuples := core.GenerateTuples(core.Params{PA: 0.88, NpPlus: 40, NpMinus: 3}, opinions, rng)
	grids := map[string][]float64{
		"grid-3":  {0.6, 0.8, 0.95},
		"grid-16": core.DefaultPAGrid(),
		"grid-45": denseGrid(),
	}
	for name, grid := range grids {
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultEMConfig()
			cfg.PAGrid = grid
			var ll float64
			for i := 0; i < b.N; i++ {
				m, _ := core.FitEM(tuples, cfg)
				ll = m.LogLikelihood(tuples)
			}
			b.ReportMetric(ll/float64(len(tuples)), "loglik/entity")
		})
	}
}

func denseGrid() []float64 {
	var g []float64
	for pa := 0.51; pa < 0.999; pa += 0.011 {
		g = append(g, pa)
	}
	return g
}

// BenchmarkAblationChecksOnOff measures the intrinsicness filter's cost
// and volume effect (the Table-4 delta at the extractor level).
func BenchmarkAblationChecksOnOff(b *testing.B) {
	base := kb.Default(1)
	lex := lexicon.Default()
	base.RegisterLexicon(lex)
	snap := corpus.NewGenerator(base, corpus.Table2Specs(),
		corpus.Config{Seed: 5, Scale: 0.2}).Generate()
	pt := pos.New(lex)
	dp := depparse.New(lex)
	et := tagger.New(base, lex)

	type prepared struct {
		tagged   []pos.Tagged
		tree     *depparse.Tree
		mentions []tagger.Mention
	}
	var prep []prepared
	for _, d := range snap.Documents {
		for _, s := range token.SplitSentences(d.Text) {
			tagged := pt.Tag(s)
			prep = append(prep, prepared{tagged, dp.Parse(tagged), et.Tag(tagged)})
		}
	}
	for name, cfg := range map[string]extract.Config{
		"checks-on":  extract.VersionConfig(extract.V4),
		"checks-off": {UseAmod: true, UseAcomp: true, ToBeOnly: true},
	} {
		ex := extract.New(lex, cfg)
		b.Run(name, func(b *testing.B) {
			n := 0
			for i := 0; i < b.N; i++ {
				p := prep[i%len(prep)]
				n += len(ex.Extract(p.tree, p.mentions))
			}
			b.ReportMetric(float64(n)/float64(b.N), "stmts/sentence")
		})
	}
}

// BenchmarkAblationZeroEvidence quantifies the coverage value of
// classifying zero-evidence entities (Figure 3d vs 3c).
func BenchmarkAblationZeroEvidence(b *testing.B) {
	w := world(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total, zero := 0, 0
		for gi := range w.Result.Groups {
			for _, eo := range w.Result.Groups[gi].Entities {
				total++
				if eo.Pos == 0 && eo.Neg == 0 && eo.Opinion != core.OpinionUnsolved {
					zero++
				}
			}
		}
		b.ReportMetric(float64(zero)/float64(total), "zero-evidence-share")
	}
}

// --- Micro-benchmarks of the hot paths ---------------------------------------

func BenchmarkTokenize(b *testing.B) {
	text := "I don't think that San Francisco is a big city, but everyone agrees that it is beautiful."
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		token.Tokenize(text)
	}
}

func BenchmarkParse(b *testing.B) {
	lex := lexicon.Default()
	pt := pos.New(lex)
	dp := depparse.New(lex)
	sent := token.SplitSentences("I don't think that snakes are never dangerous animals.")[0]
	tagged := pt.Tag(sent)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dp.Parse(tagged)
	}
}

func BenchmarkPosterior(b *testing.B) {
	m := core.Model{Params: core.Params{PA: 0.9, NpPlus: 100, NpMinus: 5}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.PosteriorPositive(core.Tuple{Pos: i % 100, Neg: i % 7})
	}
}

func BenchmarkEvidenceStoreAdd(b *testing.B) {
	s := evidence.NewStore()
	st := extract.Statement{Entity: 42, Property: "cute", Polarity: extract.Positive}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st.Entity = kb.EntityID(i % 1000)
		s.Add(st)
	}
}

// benchEvidenceStore builds a deterministic store shaped like a real run:
// every KB entity, a skewed property distribution, mixed polarities.
func benchEvidenceStore(base *kb.KB, seed uint64, statements int) *evidence.Store {
	props := []string{"cute", "big", "warm", "dangerous", "beautiful", "old",
		"crowded", "cheap", "quiet", "fast", "noisy", "clean", "very big",
		"safe", "pretty", "green", "famous", "remote", "rainy", "flat"}
	rng := stats.NewRNG(seed)
	s := evidence.NewStore()
	st := extract.Statement{}
	for i := 0; i < statements; i++ {
		st.Entity = kb.EntityID(rng.Intn(base.Len()))
		st.Property = props[rng.Intn(1+rng.Intn(len(props)))]
		st.Polarity = extract.Positive
		if rng.Bernoulli(0.25) {
			st.Polarity = extract.Negative
		}
		s.Add(st)
	}
	return s
}

// BenchmarkGroupingThroughput measures the single-pass parallel grouping
// phase (before-ρ count + grouped aggregates) on a populated store.
func BenchmarkGroupingThroughput(b *testing.B) {
	base := kb.Default(1)
	s := benchEvidenceStore(base, 11, 200_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		groups, before := evidence.ParallelGroup(s, base, 50, 0)
		if len(groups) == 0 || before == 0 {
			b.Fatal("grouping produced nothing")
		}
	}
}

// BenchmarkStoreMergeThroughput measures folding worker-sized evidence
// shards into a shared store — the reduce step of worker-local
// aggregation.
func BenchmarkStoreMergeThroughput(b *testing.B) {
	base := kb.Default(1)
	shards := make([]*evidence.Store, 8)
	for i := range shards {
		shards[i] = benchEvidenceStore(base, uint64(20+i), 25_000)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst := evidence.NewStore()
		for _, src := range shards {
			dst.Merge(src)
		}
		if dst.Len() == 0 {
			b.Fatal("merge produced nothing")
		}
	}
}

// BenchmarkWireCodec measures the evidence wire codec on a run-shaped
// store: frame encode (snapshot + varint body + checksum) and validated
// decode. Throughput is reported against the encoded byte volume — the
// number that bounds what the distributed coordinator can absorb.
func BenchmarkWireCodec(b *testing.B) {
	base := kb.Default(1)
	s := benchEvidenceStore(base, 17, 200_000)
	var frame bytes.Buffer
	if _, err := wire.EncodeStore(&frame, s); err != nil {
		b.Fatal(err)
	}
	encoded := frame.Bytes()
	b.Run("encode", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(encoded)))
		var buf bytes.Buffer
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if _, err := wire.EncodeStore(&buf, s); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(encoded)))
		for i := 0; i < b.N; i++ {
			st, _, err := wire.DecodeStore(bytes.NewReader(encoded))
			if err != nil {
				b.Fatal(err)
			}
			if st.Len() != s.Len() {
				b.Fatal("decode lost entries")
			}
		}
	})
}

// BenchmarkDistributedMine measures the multi-process scale-out against
// its own single-worker baseline: N workers, each a single-threaded
// in-process worker speaking the real wire protocol (LocalTransport, so
// the codec and coordination costs are included but fork/exec noise is
// not). The N4/N1 time ratio is the distribution speedup on the
// extraction-dominated pipeline.
func BenchmarkDistributedMine(b *testing.B) {
	base := kb.Default(1)
	lex := lexicon.Default()
	base.RegisterLexicon(lex)
	snap := corpus.NewGenerator(base, corpus.Table2Specs(),
		corpus.Config{Seed: 2, Scale: benchScale}).Generate()
	workerCfg := pipeline.Config{Rho: int64(40 * benchScale), Workers: 1}
	run := func(b *testing.B, shards int) {
		b.Helper()
		cfg := dist.Config{
			Shards:    shards,
			Transport: &dist.LocalTransport{Base: base, Lex: lex, Pipeline: workerCfg},
			Pipeline:  workerCfg,
		}
		for i := 0; i < b.N; i++ {
			res, failed, err := dist.Mine(context.Background(), snap.Documents, base, cfg)
			if err != nil || len(failed) != 0 {
				b.Fatalf("err=%v failed=%v", err, failed)
			}
			if res.TotalStatements == 0 {
				b.Fatal("no statements")
			}
		}
		b.ReportMetric(float64(len(snap.Documents)), "docs/run")
	}
	b.Run("N1", func(b *testing.B) { run(b, 1) })
	b.Run("N4", func(b *testing.B) { run(b, 4) })
}

// BenchmarkDistObsOverhead is the distributed twin of BenchmarkObsOverhead:
// the same 4-shard run with telemetry fully off versus on. "On" mirrors
// the single-process pair — a live metrics registry per process, no
// tracer — so the pair isolates the new distributed machinery: workers
// snapshotting and shipping SVTM frames, the coordinator decoding and
// federating them. cmd/benchdiff gates the pair at the same ≤2%
// tolerance: telemetry must stay write-only and nearly free on the
// distributed path too.
func BenchmarkDistObsOverhead(b *testing.B) {
	base := kb.Default(1)
	lex := lexicon.Default()
	base.RegisterLexicon(lex)
	snap := corpus.NewGenerator(base, corpus.Table2Specs(),
		corpus.Config{Seed: 2, Scale: benchScale}).Generate()
	workerCfg := pipeline.Config{Rho: int64(40 * benchScale), Workers: 1}
	const shards = 4
	run := func(b *testing.B, telemetry bool) {
		b.Helper()
		lt := &dist.LocalTransport{Base: base, Lex: lex, Pipeline: workerCfg}
		reduceCfg := workerCfg
		if telemetry {
			lt.WorkerObs = func(int) *obs.RunObs {
				return &obs.RunObs{Metrics: obs.NewRegistry()}
			}
		}
		for i := 0; i < b.N; i++ {
			if telemetry {
				reduceCfg.Obs = &obs.RunObs{Metrics: obs.NewRegistry()}
			}
			cfg := dist.Config{Shards: shards, Transport: lt, Pipeline: reduceCfg}
			res, failed, err := dist.Mine(context.Background(), snap.Documents, base, cfg)
			if err != nil || len(failed) != 0 {
				b.Fatalf("err=%v failed=%v", err, failed)
			}
			if res.TotalStatements == 0 {
				b.Fatal("no statements")
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}

// BenchmarkAnnotationLayer measures the annotate-once architecture: the
// cost of annotation vs the cost of one extraction pass over annotations.
func BenchmarkAnnotationLayer(b *testing.B) {
	base := kb.Default(1)
	lex := lexicon.Default()
	base.RegisterLexicon(lex)
	snap := corpus.NewGenerator(base, corpus.Table2Specs(),
		corpus.Config{Seed: 4, Scale: 0.2}).Generate()
	b.Run("annotate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pipeline.Annotate(snap.Documents, base, lex, 0)
		}
	})
	annotated := pipeline.Annotate(snap.Documents, base, lex, 0)
	b.Run("extract-from-annotations", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pipeline.RunAnnotated(annotated, base, lex, pipeline.Config{Rho: 10})
		}
	})
}

// BenchmarkAblationAntonymFolding regenerates the Section-4 antonym
// decision: F1 per interpretation mode.
func BenchmarkAblationAntonymFolding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.AntonymAblation(
			experiments.WorldConfig{Seed: 1, Scale: benchScale}, 0.35)
		slugs := map[experiments.AntonymMode]string{
			experiments.AntonymIgnore: "F1-ignore",
			experiments.AntonymStrict: "F1-fold-strict",
			experiments.AntonymNaive:  "F1-fold-naive",
		}
		for _, r := range rows {
			b.ReportMetric(r.F1, slugs[r.Mode])
		}
	}
}

// BenchmarkFutureWorkBounds regenerates the Section-9 outlook experiment.
func BenchmarkFutureWorkBounds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.FutureWork(experiments.WorldConfig{Seed: 1, Scale: benchScale, Rho: 20})
		if len(rows) != 3 {
			b.Fatal("futurework incomplete")
		}
	}
}

// BenchmarkQueryEngine measures subjective-query answering over a mined
// result.
func BenchmarkQueryEngine(b *testing.B) {
	w := world(b)
	eng := query.NewEngine(w.KB, w.Lex, w.Result)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run("dangerous animals"); err != nil {
			b.Fatal(err)
		}
	}
}
