package main

import (
	"strings"
	"testing"
)

// TestRun drives the example end to end on a reduced snapshot.
func TestRun(t *testing.T) {
	var buf strings.Builder
	run(&buf, 0.1)
	out := buf.String()
	for _, want := range []string{"run:", "majority vote calls", "zero statements"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
