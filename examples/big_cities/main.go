// Big cities: the Section-2 empirical study as a runnable example.
//
// 461 Californian cities, heavy polarity bias (people write "X is a big
// city" an order of magnitude more often than "X is not a big city"), and
// a long visibility tail — most small towns are never mentioned at all.
// The example shows the two failure modes of majority voting (Figure 3c)
// and how the probabilistic model fixes both (Figure 3d), including
// deciding zero-evidence cities from the absence of statements alone.
//
// Run with: go run ./examples/big_cities
package main

import (
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/corpus"
	"repro/internal/kb"
	"repro/surveyor"
)

func main() { run(os.Stdout, 1) }

// run does the actual work at the given corpus scale; the smoke test
// drives it in-process on a small snapshot.
func run(w io.Writer, scale float64) {
	builder := kb.NewBuilder(3)
	builder.CalifornianCities(461)
	builder.AssignProminence("city", "population")
	base := builder.KB()

	spec := corpus.Figure3Spec()
	spec.PopularityWeighting = true
	snap := corpus.NewGenerator(base, []corpus.Spec{spec},
		corpus.Config{Seed: 3, Scale: scale}).Generate()

	sys := surveyor.NewSystem()
	type cityInfo struct {
		id  int
		pop float64
	}
	cities := make(map[string]cityInfo, base.Len())
	for _, kid := range base.OfType("city") {
		e := base.Get(kid)
		id := sys.AddEntity(e.Name, "city", true, e.Attributes)
		cities[e.Name] = cityInfo{id: id, pop: e.Attr("population", 0)}
	}

	docs := make([]surveyor.Document, len(snap.Documents))
	for i, d := range snap.Documents {
		docs[i] = surveyor.Document{URL: d.URL, Text: d.Text}
	}
	res := sys.Mine(docs, surveyor.Config{Rho: 50})
	fmt.Fprintln(w, "run:", res.Stats())

	names := make([]string, 0, len(cities))
	for n := range cities {
		names = append(names, n)
	}
	sort.Slice(names, func(a, b int) bool { return cities[names[a]].pop > cities[names[b]].pop })

	fmt.Fprintln(w, "\npopulation    city                 evidence     MV   model")
	var mvWrongSmall, zeroDecided int
	for i, n := range names {
		info := cities[n]
		op, ok := res.OpinionByID(info.id, "big")
		if !ok {
			continue
		}
		mv := surveyor.MajorityVote(surveyor.Counts{Pos: int(op.Pos), Neg: int(op.Neg)})
		if info.pop < 100_000 && mv == surveyor.Positive {
			mvWrongSmall++
		}
		if op.Pos == 0 && op.Neg == 0 && op.Opinion != surveyor.Unsolved {
			zeroDecided++
		}
		// Print the extremes and a slice of the middle.
		if i < 6 || i >= len(names)-6 || (i >= 225 && i < 231) {
			fmt.Fprintf(w, "%10.0f    %-20s +%3d/-%3d    %s    %s (p=%.3f)\n",
				info.pop, n, op.Pos, op.Neg, mv, op.Opinion, op.Probability)
		}
		if i == 6 || i == 231 {
			fmt.Fprintln(w, "      ...")
		}
	}
	fmt.Fprintf(w, "\nmajority vote calls %d cities under 100k population 'big' (the Figure 3c failure)\n", mvWrongSmall)
	fmt.Fprintf(w, "the model classified %d cities that have zero statements (the Figure 3d coverage win)\n", zeroDecided)
}
