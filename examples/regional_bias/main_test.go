package main

import (
	"strings"
	"testing"
)

// TestRun drives the example end to end on a reduced snapshot.
func TestRun(t *testing.T) {
	var buf strings.Builder
	run(&buf, 0.3)
	out := buf.String()
	if !strings.Contains(out, "mining") {
		t.Fatalf("output missing mining lines:\n%s", out)
	}
	if !strings.Contains(out, "in one region but not the other") {
		t.Fatalf("output missing the regional diff summary:\n%s", out)
	}
}
