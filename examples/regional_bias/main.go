// Regional bias: region-specific mining by restricting the input corpus.
//
// Section 2 of the paper notes that "Chinese users might have different
// ideas than American users about what constitutes a big city" and that
// Surveyor can produce region-specific results by restricting the input to
// web sites with specific domain extensions. This example builds a
// snapshot authored by two regions with different thresholds for "big",
// then mines each region's documents separately and diffs the results.
//
// Run with: go run ./examples/regional_bias
package main

import (
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/corpus"
	"repro/internal/kb"
	"repro/surveyor"
)

func main() { run(os.Stdout, 1.5) }

// run does the actual work at the given corpus scale; the smoke test
// drives it in-process on a small snapshot.
func run(w io.Writer, scale float64) {
	builder := kb.NewBuilder(11)
	builder.CalifornianCities(150)
	base := builder.KB()

	// Authors from .com call a city big above 150k inhabitants; authors
	// from .cn only above 600k.
	spec := corpus.RegionalSpec("big", "com", "cn", 150_000)
	snap := corpus.NewGenerator(base, []corpus.Spec{spec}, corpus.Config{
		Seed:  11,
		Scale: scale,
		Domains: []corpus.DomainShare{
			{Domain: "com", Share: 0.5},
			{Domain: "cn", Share: 0.5},
		},
	}).Generate()

	mine := func(domain string) (*surveyor.Result, *surveyor.System) {
		sys := surveyor.NewSystem()
		for _, id := range base.OfType("city") {
			e := base.Get(id)
			sys.AddEntity(e.Name, "city", true, e.Attributes)
		}
		var docs []surveyor.Document
		for _, d := range snap.DocumentsInDomain(domain) {
			docs = append(docs, surveyor.Document{URL: d.URL, Domain: d.Domain, Text: d.Text})
		}
		fmt.Fprintf(w, "mining %d documents from .%s sites\n", len(docs), domain)
		return sys.Mine(docs, surveyor.Config{Rho: 30}), sys
	}

	resCom, _ := mine("com")
	resCn, _ := mine("cn")

	type row struct {
		name string
		pop  float64
		com  surveyor.Opinion
		cn   surveyor.Opinion
	}
	var rows []row
	for _, id := range base.OfType("city") {
		e := base.Get(id)
		opCom, ok1 := resCom.Opinion(e.Name, "big")
		opCn, ok2 := resCn.Opinion(e.Name, "big")
		if !ok1 || !ok2 {
			continue
		}
		rows = append(rows, row{e.Name, e.Attr("population", 0), opCom.Opinion, opCn.Opinion})
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].pop > rows[b].pop })

	fmt.Fprintln(w, "\npopulation    city                 .com  .cn")
	disagreements := 0
	for _, r := range rows {
		marker := ""
		if r.com != r.cn {
			disagreements++
			marker = "   <- regions disagree"
		}
		if r.pop > 1_000_000 || (r.pop > 100_000 && r.pop < 700_000) || r.com != r.cn {
			fmt.Fprintf(w, "%10.0f    %-20s %s     %s%s\n", r.pop, r.name, r.com, r.cn, marker)
		}
	}
	fmt.Fprintf(w, "\n%d of %d cities are 'big' in one region but not the other\n", disagreements, len(rows))
	fmt.Fprintln(w, "(mid-size cities are big to .com authors but not to .cn authors)")
}
