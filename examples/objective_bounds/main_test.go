package main

import (
	"strings"
	"testing"
)

// TestRun drives the example end to end on a reduced snapshot. Rule
// learning may legitimately fail on a small corpus, but the run must
// complete and say so.
func TestRun(t *testing.T) {
	var buf strings.Builder
	run(&buf, 0.15)
	out := buf.String()
	if !strings.Contains(out, "run:") {
		t.Fatalf("output missing run stats:\n%s", out)
	}
	if !strings.Contains(out, "learned rule:") && !strings.Contains(out, "no rule could be learned") {
		t.Fatalf("run reported neither a rule nor a failure:\n%s", out)
	}
}
