// Objective bounds: the paper's future-work direction (Section 9) as a
// runnable example — "find a lower bound on the population count of a
// city starting from which an average user would call that city big."
//
// The example mines opinions for "big" over the Californian cities, then
// learns the population bound implied by those opinions alone, without
// ever being told the generative threshold.
//
// Run with: go run ./examples/objective_bounds
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/corpus"
	"repro/internal/kb"
	"repro/surveyor"
)

func main() { run(os.Stdout, 1) }

// run does the actual work at the given corpus scale; the smoke test
// drives it in-process on a small snapshot.
func run(w io.Writer, scale float64) {
	builder := kb.NewBuilder(21)
	builder.CalifornianCities(461)
	builder.AssignProminence("city", "population")
	base := builder.KB()

	spec := corpus.Figure3Spec() // latent midpoint: 250,000 inhabitants
	spec.PopularityWeighting = true
	snap := corpus.NewGenerator(base, []corpus.Spec{spec},
		corpus.Config{Seed: 21, Scale: scale}).Generate()

	sys := surveyor.NewSystem()
	for _, id := range base.OfType("city") {
		e := base.Get(id)
		sys.AddEntity(e.Name, "city", true, e.Attributes)
	}
	docs := make([]surveyor.Document, len(snap.Documents))
	for i, d := range snap.Documents {
		docs[i] = surveyor.Document{URL: d.URL, Text: d.Text}
	}

	res := sys.Mine(docs, surveyor.Config{Rho: 50})
	fmt.Fprintln(w, "run:", res.Stats())

	rule, ok := res.LearnRule("city", "big", "population")
	if !ok {
		fmt.Fprintln(w, "no rule could be learned")
		return
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "learned rule:", rule)
	fmt.Fprintf(w, "generative threshold the corpus was built from: 250,000\n")
	fmt.Fprintf(w, "usable for refinement: %v (correlation %.2f)\n", rule.Usable, rule.Correlation)

	fmt.Fprintln(w)
	fmt.Fprintln(w, "spot checks against the learned bound:")
	for _, name := range []string{"Los Angeles", "Sacramento", "Palo Alto", "Sausalito"} {
		op, ok := res.Opinion(name, "big")
		if !ok {
			continue
		}
		fmt.Fprintf(w, "  %-14s mined: %s (p=%.2f)\n", name, op.Opinion, op.Probability)
	}
}
