// Quickstart: mine subjective properties from a handful of sentences.
//
// This is the smallest end-to-end use of the public API: register
// entities, feed raw text, read back dominant opinions. It also shows the
// low-level model API working directly on statement counts — including the
// zero-evidence inference that lets Surveyor classify entities nobody ever
// wrote about.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"os"

	"repro/surveyor"
)

func main() { run(os.Stdout) }

// run does the actual work; the smoke test drives it in-process.
func run(w io.Writer) {
	sys := surveyor.NewSystem()
	for _, animal := range []string{"kitten", "puppy", "spider", "scorpion", "hamster"} {
		sys.AddEntity(animal, "animal", false, nil)
	}

	docs := []surveyor.Document{
		{Text: "Kittens are cute. I think that puppies are cute animals."},
		{Text: "Everyone agrees that kittens are cute. Hamsters are cute."},
		{Text: "Spiders are not cute. I don't think that scorpions are cute."},
		{Text: "The kitten is really cute. Puppies are cute and lovely."},
		{Text: "Spiders aren't cute. Scorpions are never cute."},
		{Text: "I don't think that kittens are never cute."}, // double negation = positive
	}

	res := sys.Mine(docs, surveyor.Config{Rho: 1})
	fmt.Fprintln(w, "run:", res.Stats())
	fmt.Fprintln(w)

	fmt.Fprintln(w, "Dominant opinions for property \"cute\":")
	for _, animal := range []string{"kitten", "puppy", "hamster", "spider", "scorpion"} {
		op, ok := res.Opinion(animal, "cute")
		if !ok {
			fmt.Fprintf(w, "  %-10s (not classified)\n", animal)
			continue
		}
		fmt.Fprintf(w, "  %s %-10s Pr(cute)=%.3f  evidence +%d/-%d\n",
			op.Opinion, animal, op.Probability, op.Pos, op.Neg)
	}

	// The low-level model API: counts in, opinions out — no text at all.
	// Note the zero-count tuple at the end: the fitted model still decides
	// it (an entity nobody mentions is probably not cute in a world where
	// cute entities attract dozens of statements).
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Low-level model on raw counts:")
	counts := []surveyor.Counts{
		{Pos: 42, Neg: 1}, {Pos: 38, Neg: 2}, {Pos: 55, Neg: 0}, // cute cluster
		{Pos: 3, Neg: 6}, {Pos: 1, Neg: 8}, {Pos: 0, Neg: 5}, // not-cute cluster
		{Pos: 0, Neg: 0}, // never mentioned
	}
	model := surveyor.FitModel(counts)
	fmt.Fprintf(w, "  fitted: pA=%.2f np+S=%.1f np-S=%.1f\n", model.PA, model.NpPlus, model.NpMinus)
	for _, c := range counts {
		fmt.Fprintf(w, "  (+%d,-%d) -> %s  (Pr=%.3f; majority vote says %s)\n",
			c.Pos, c.Neg, model.Decide(c), model.ProbabilityPositive(c), surveyor.MajorityVote(c))
	}
}
