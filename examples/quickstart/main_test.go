package main

import (
	"strings"
	"testing"
)

// TestRun drives the example end to end and checks it produces the
// sections it promises.
func TestRun(t *testing.T) {
	var buf strings.Builder
	run(&buf)
	out := buf.String()
	for _, want := range []string{"run:", "Dominant opinions", "Low-level model"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
