package main

import (
	"strings"
	"testing"
)

// TestRun drives the example end to end on a reduced snapshot.
func TestRun(t *testing.T) {
	var buf strings.Builder
	run(&buf, 0.15)
	out := buf.String()
	if !strings.Contains(out, "run:") {
		t.Fatalf("output missing run stats:\n%s", out)
	}
	if !strings.Contains(out, "animals ===") {
		t.Fatalf("no animal property group was mined:\n%s", out)
	}
}
