// Cute animals: the paper's running example (Figures 1, 10, Example 2) on
// a realistic synthetic snapshot.
//
// The example generates a web snapshot for the animal domain with the
// paper's authoring biases (cuteness is stated far more often than its
// absence), mines it through the full pipeline, and contrasts the fitted
// per-combination model against naive majority voting — including for
// animals the snapshot never mentions.
//
// Run with: go run ./examples/cute_animals
package main

import (
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/corpus"
	"repro/internal/kb"
	"repro/surveyor"
)

func main() { run(os.Stdout, 1.5) }

// run does the actual work at the given corpus scale; the smoke test
// drives it in-process on a small snapshot.
func run(w io.Writer, scale float64) {
	// Build the animal domain and a synthetic snapshot for it. The corpus
	// generator is a test fixture (the substitute for a web crawl); the
	// mining below uses only the public API.
	base := kb.Default(7)
	var specs []corpus.Spec
	for _, s := range corpus.Table2Specs() {
		if s.Type == "animal" {
			specs = append(specs, s)
		}
	}
	snap := corpus.NewGenerator(base, specs, corpus.Config{Seed: 7, Scale: scale}).Generate()

	sys := surveyor.NewSystemWithBuiltinKB(7)
	docs := make([]surveyor.Document, len(snap.Documents))
	for i, d := range snap.Documents {
		docs[i] = surveyor.Document{URL: d.URL, Domain: d.Domain, Text: d.Text}
	}

	res := sys.Mine(docs, surveyor.Config{Rho: 40})
	fmt.Fprintln(w, "run:", res.Stats())

	for _, g := range res.Groups() {
		if g.Type != "animal" {
			continue
		}
		fmt.Fprintf(w, "\n=== %s animals ===  fitted pA=%.2f np+S=%.1f np-S=%.1f\n",
			g.Property, g.PA, g.NpPlus, g.NpMinus)

		ents := append([]surveyor.EntityOpinion(nil), g.Entities...)
		sort.Slice(ents, func(a, b int) bool { return ents[a].Probability > ents[b].Probability })

		fmt.Fprintln(w, "most confidently YES:")
		for _, eo := range ents[:5] {
			fmt.Fprintf(w, "  %s %-14s p=%.3f (+%d/-%d)\n", eo.Opinion, eo.Entity, eo.Probability, eo.Pos, eo.Neg)
		}
		fmt.Fprintln(w, "most confidently NO:")
		for i := len(ents) - 5; i < len(ents); i++ {
			eo := ents[i]
			fmt.Fprintf(w, "  %s %-14s p=%.3f (+%d/-%d)\n", eo.Opinion, eo.Entity, eo.Probability, eo.Pos, eo.Neg)
		}

		// Cases where the model overrules the raw majority — the paper's
		// polarity-bias correction at work.
		overruled := 0
		for _, eo := range ents {
			mv := surveyor.MajorityVote(surveyor.Counts{Pos: int(eo.Pos), Neg: int(eo.Neg)})
			if mv != surveyor.Unsolved && mv != eo.Opinion && eo.Opinion != surveyor.Unsolved {
				if overruled == 0 {
					fmt.Fprintln(w, "model overrules raw majority for:")
				}
				overruled++
				if overruled <= 4 {
					fmt.Fprintf(w, "  %-14s counts +%d/-%d say %s, model says %s (p=%.3f)\n",
						eo.Entity, eo.Pos, eo.Neg, mv, eo.Opinion, eo.Probability)
				}
			}
		}
		fmt.Fprintf(w, "(%d majority-vote decisions overruled, of %d animals)\n", overruled, len(ents))
	}
}
