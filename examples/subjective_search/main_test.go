package main

import (
	"strings"
	"testing"
)

// TestRun drives the example end to end on a reduced snapshot.
func TestRun(t *testing.T) {
	var buf strings.Builder
	run(&buf, 0.1)
	out := buf.String()
	if !strings.Contains(out, "run:") {
		t.Fatalf("output missing run stats:\n%s", out)
	}
	for _, q := range []string{"? dangerous animals", "? big cities", "queryable properties"} {
		if !strings.Contains(out, q) {
			t.Fatalf("output missing %q:\n%s", q, out)
		}
	}
}
