// Subjective search: the paper's motivating application — answering
// subjective queries the way a search engine answers objective ones.
//
// The example mines the full evaluation snapshot and then answers query
// strings like "dangerous animals", "very big cities", and
// "not boring sports" from the opinion store, ranked by confidence.
//
// Run with: go run ./examples/subjective_search
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/corpus"
	"repro/internal/kb"
	"repro/surveyor"
)

func main() { run(os.Stdout, 1) }

// run does the actual work at the given corpus scale; the smoke test
// drives it in-process on a small snapshot.
func run(w io.Writer, scale float64) {
	base := kb.Default(5)
	snap := corpus.NewGenerator(base, corpus.Table2Specs(),
		corpus.Config{Seed: 5, Scale: scale}).Generate()

	sys := surveyor.NewSystemWithBuiltinKB(5)
	docs := make([]surveyor.Document, len(snap.Documents))
	for i, d := range snap.Documents {
		docs[i] = surveyor.Document{URL: d.URL, Domain: d.Domain, Text: d.Text}
	}
	res := sys.Mine(docs, surveyor.Config{Rho: 40})
	fmt.Fprintln(w, "run:", res.Stats())

	queries := []string{
		"dangerous animals",
		"big cities",
		"not boring sports",
		"popular sports",
		"cute animals",
	}
	for _, q := range queries {
		fmt.Fprintf(w, "\n? %s\n", q)
		answers, err := res.Query(q)
		if err != nil {
			fmt.Fprintln(w, "  ", err)
			continue
		}
		max := 6
		if len(answers) < max {
			max = len(answers)
		}
		for _, a := range answers[:max] {
			fmt.Fprintf(w, "   %-18s p=%.3f  (+%d/-%d statements)\n",
				a.Entity, a.Probability, a.Pos, a.Neg)
		}
		if len(answers) > max {
			fmt.Fprintf(w, "   ... and %d more\n", len(answers)-max)
		}
	}

	fmt.Fprintln(w, "\nqueryable properties for animals:", res.QueryableProperties("animal"))
}
