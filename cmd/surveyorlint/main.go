// Command surveyorlint runs the repository's custom determinism,
// concurrency, and safety-contract analyzers (detmap, detrand, obsflow,
// scratch, lockflow, allocbound, ctxflow, errflow) over package patterns,
// mirroring a golang.org/x/tools multichecker on the standard library
// only.
//
// Standalone use:
//
//	go run ./cmd/surveyorlint ./...
//
// As a vet tool (unit-checker protocol):
//
//	go build -o /tmp/surveyorlint ./cmd/surveyorlint
//	go vet -vettool=/tmp/surveyorlint ./...
//
// Findings can be suppressed one line at a time with a justified
// directive, either trailing the offending line or on the line above:
//
//	//lint:allow <analyzer> <one-line reason>
//
// A directive with no reason, naming an unknown analyzer, or suppressing
// nothing is itself reported. The command exits 0 when the tree is clean
// and 1 when there are findings.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis/allocbound"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/detmap"
	"repro/internal/analysis/detrand"
	"repro/internal/analysis/errflow"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/lockflow"
	"repro/internal/analysis/obsflow"
	"repro/internal/analysis/scratch"
)

var analyzers = []*framework.Analyzer{
	detmap.Analyzer,
	detrand.Analyzer,
	obsflow.Analyzer,
	scratch.Analyzer,
	lockflow.Analyzer,
	allocbound.Analyzer,
	ctxflow.Analyzer,
	errflow.Analyzer,
}

func knownAnalyzers() map[string]bool {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	return known
}

func main() {
	// The go command probes vet tools with -V=full and -flags before
	// handing them package configs; all are handled before normal flag
	// parsing.
	if len(os.Args) == 2 {
		if strings.HasPrefix(os.Args[1], "-V") {
			fmt.Printf("surveyorlint version %s\n", buildFingerprint())
			return
		}
		if os.Args[1] == "-flags" {
			fmt.Println("[]")
			return
		}
		if strings.HasSuffix(os.Args[1], ".cfg") {
			os.Exit(vetMode(os.Args[1]))
		}
	}

	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: surveyorlint [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := framework.Load("", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "surveyorlint:", err)
		os.Exit(2)
	}

	// One fact store for the whole run: Load returns packages in
	// dependency order, so an imported package's facts are in the store
	// before any of its importers are analyzed.
	facts := framework.NewFactStore(analyzers)
	var all []framework.Finding
	for _, pkg := range pkgs {
		findings, err := framework.Run(pkg, analyzers, facts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "surveyorlint:", err)
			os.Exit(2)
		}
		allows, malformed := framework.CollectAllows(pkg, knownAnalyzers())
		kept, unused := framework.Suppress(findings, allows)
		all = append(all, kept...)
		all = append(all, malformed...)
		all = append(all, unused...)
	}
	framework.SortFindings(all)

	cwd, _ := os.Getwd()
	for _, f := range all {
		fmt.Printf("%s: [%s] %s\n", relTo(cwd, f.Pos.String()), f.Analyzer, f.Message)
		for _, fix := range f.Fixes {
			fmt.Printf("\tsuggested fix: %s\n", fix.Message)
		}
	}
	if len(all) > 0 {
		fmt.Fprintf(os.Stderr, "surveyorlint: %d finding(s)\n", len(all))
		os.Exit(1)
	}
}

// relTo shortens an absolute file:line:col position to be relative to the
// working directory when possible.
func relTo(cwd, pos string) string {
	if cwd == "" || !filepath.IsAbs(pos) {
		return pos
	}
	if rel, err := filepath.Rel(cwd, pos); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return pos
}
