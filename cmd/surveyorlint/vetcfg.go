package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"

	"repro/internal/analysis/framework"
)

// vetConfig is the unit-checker protocol's per-package configuration file,
// written by the go command when surveyorlint is used via
// `go vet -vettool=...`. Field names follow x/tools' unitchecker.Config.
type vetConfig struct {
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetMode runs the analyzers over one package described by a .cfg file and
// returns the process exit code: 0 clean, 2 findings (the go vet
// convention), 1 on protocol or type-check errors.
func vetMode(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "surveyorlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "surveyorlint: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// The go command threads each dependency's serialized facts file in
	// through PackageVetx and expects this package's accumulated facts
	// (imported ∪ newly exported) back at VetxOutput, caching the file
	// keyed by the tool fingerprint. Even a VetxOnly run (a package
	// analyzed solely as a dependency) must therefore run the analyzers
	// for their fact side effects; only the diagnostics are discarded.
	facts := framework.NewFactStore(analyzers)
	for _, path := range sortedKeys(cfg.PackageVetx) {
		data, err := os.ReadFile(cfg.PackageVetx[path])
		if err != nil {
			fmt.Fprintln(os.Stderr, "surveyorlint:", err)
			return 1
		}
		if err := facts.Decode(data); err != nil {
			fmt.Fprintf(os.Stderr, "surveyorlint: facts of %s: %v\n", path, err)
			return 1
		}
	}
	writeVetx := func() int {
		if cfg.VetxOutput == "" {
			return 0
		}
		data, err := facts.Encode()
		if err != nil {
			fmt.Fprintln(os.Stderr, "surveyorlint:", err)
			return 1
		}
		if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "surveyorlint:", err)
			return 1
		}
		return 0
	}

	// Dependency-only packages (VetxOnly, including the whole standard
	// library) are analyzed purely for their fact side effects — skip
	// the analyzers that produce none, and skip the type check entirely
	// when no analyzer produces facts at all.
	torun := analyzers
	if cfg.VetxOnly {
		torun = nil
		for _, a := range analyzers {
			if len(a.FactTypes) > 0 {
				torun = append(torun, a)
			}
		}
		if len(torun) == 0 {
			return writeVetx()
		}
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintln(os.Stderr, "surveyorlint:", err)
			return 1
		}
		files = append(files, f)
	}
	info := framework.NewInfo()
	conf := types.Config{
		Importer: framework.ExportImporter(fset, cfg.PackageFile, cfg.ImportMap),
	}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			// Pass the imported facts through so dependents still see
			// them; this package contributes none.
			return writeVetx()
		}
		fmt.Fprintf(os.Stderr, "surveyorlint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	pkg := &framework.Package{
		Path:      cfg.ImportPath,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}
	findings, err := framework.Run(pkg, torun, facts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "surveyorlint:", err)
		return 1
	}
	if code := writeVetx(); code != 0 {
		return code
	}
	if cfg.VetxOnly {
		return 0
	}
	allows, malformed := framework.CollectAllows(pkg, knownAnalyzers())
	kept, unused := framework.Suppress(findings, allows)
	all := append(append(kept, malformed...), unused...)
	framework.SortFindings(all)
	for _, f := range all {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", f.Pos, f.Analyzer, f.Message)
	}
	if len(all) > 0 {
		return 2
	}
	return 0
}

// sortedKeys returns m's keys sorted, for deterministic fact loading.
func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// buildFingerprint hashes the executable so `go vet` can cache results
// keyed by the tool build, as the -V=full protocol expects.
func buildFingerprint() string {
	exe, err := os.Executable()
	if err != nil {
		return "devel"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "devel"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "devel"
	}
	return fmt.Sprintf("devel buildID=%x", h.Sum(nil)[:16])
}
