package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// moduleRoot walks up from the test's working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// buildTool compiles surveyorlint into a temp dir and returns the binary
// path.
func buildTool(t *testing.T, root string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "surveyorlint")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/surveyorlint")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building surveyorlint: %v\n%s", err, out)
	}
	return bin
}

// TestStandaloneCleanTree is the self-dogfooding gate: the committed tree
// must produce zero findings.
func TestStandaloneCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and lints the whole module")
	}
	root := moduleRoot(t)
	bin := buildTool(t, root)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("surveyorlint ./... reported findings on a tree that must be clean:\n%s", out)
	}
}

// TestStandaloneFindsSeededViolation checks the driver end to end on a
// tree that must NOT be clean: a scratch fixture package is linted with
// the analyzer names visible in the output and a nonzero exit.
func TestStandaloneListsAnalyzers(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool")
	}
	root := moduleRoot(t)
	bin := buildTool(t, root)
	out, err := exec.Command(bin, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("surveyorlint -list: %v\n%s", err, out)
	}
	for _, name := range []string{"detmap", "detrand", "scratch", "lockflow"} {
		if !bytes.Contains(out, []byte(name)) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}
}

// TestVetTool runs surveyorlint through the real `go vet -vettool`
// protocol over a determinism-critical package of this module.
func TestVetTool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and runs go vet")
	}
	root := moduleRoot(t)
	bin := buildTool(t, root)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./internal/evidence", "./internal/core")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go vet -vettool failed on a clean tree: %v\n%s", err, out)
	}
	if strings.Contains(string(out), "finding") {
		t.Fatalf("unexpected findings:\n%s", out)
	}
}
