package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// moduleRoot walks up from the test's working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// buildTool compiles surveyorlint into a temp dir and returns the binary
// path.
func buildTool(t *testing.T, root string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "surveyorlint")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/surveyorlint")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building surveyorlint: %v\n%s", err, out)
	}
	return bin
}

// TestStandaloneCleanTree is the self-dogfooding gate: the committed tree
// must produce zero findings.
func TestStandaloneCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and lints the whole module")
	}
	root := moduleRoot(t)
	bin := buildTool(t, root)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("surveyorlint ./... reported findings on a tree that must be clean:\n%s", out)
	}
}

// TestStandaloneFindsSeededViolation checks the driver end to end on a
// tree that must NOT be clean: a scratch fixture package is linted with
// the analyzer names visible in the output and a nonzero exit.
func TestStandaloneListsAnalyzers(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool")
	}
	root := moduleRoot(t)
	bin := buildTool(t, root)
	out, err := exec.Command(bin, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("surveyorlint -list: %v\n%s", err, out)
	}
	for _, name := range []string{
		"detmap", "detrand", "obsflow", "scratch", "lockflow",
		"allocbound", "ctxflow", "errflow",
	} {
		if !bytes.Contains(out, []byte(name)) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}
}

// TestVetTool runs surveyorlint through the real `go vet -vettool`
// protocol over a determinism-critical package of this module.
func TestVetTool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and runs go vet")
	}
	root := moduleRoot(t)
	bin := buildTool(t, root)
	// wire and dist exercise the cross-package fact path over the real
	// tree: dist's decode guards are only provable through the
	// DecodedSource/ValidatesParam facts wire's analysis leaves in .vetx.
	cmd := exec.Command("go", "vet", "-vettool="+bin,
		"./internal/evidence", "./internal/core", "./internal/wire", "./internal/dist")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go vet -vettool failed on a clean tree: %v\n%s", err, out)
	}
	if strings.Contains(string(out), "finding") {
		t.Fatalf("unexpected findings:\n%s", out)
	}
}

// writeFixtureModule lays out a scratch module with one injected violation
// per dataflow analyzer. The allocbound violation lives in a package that
// only imports the decoder — catching it requires wire's DecodedSource
// fact to cross the package (and, under go vet, the process) boundary.
func writeFixtureModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module fixturemod\n\ngo 1.22\n",
		"internal/wire/wire.go": `// Package wire is the clean decoder half of the fixture.
package wire

import "encoding/binary"

// DecodeCount decodes a count prefix; callers must bound-check it.
func DecodeCount(b []byte) uint64 {
	v, _ := binary.Uvarint(b)
	return v
}
`,
		"internal/dist/dist.go": `// Package dist holds the cross-package allocbound violation.
package dist

import "fixturemod/internal/wire"

// Alloc sizes a slice straight from the decoded count, unguarded.
func Alloc(b []byte) []int {
	n := wire.DecodeCount(b)
	return make([]int, n)
}
`,
		"internal/ctxbad/ctxbad.go": `// Package ctxbad holds the ctxflow violation.
package ctxbad

import "context"

// Fresh detaches its callees from the caller's cancellation tree.
func Fresh() context.Context {
	return context.Background()
}
`,
		"internal/corpus/corpus.go": `// Package corpus holds the errflow violation.
package corpus

import "io"

// AtEOF matches a sentinel by identity, broken under wrapping.
func AtEOF(err error) bool {
	return err == io.EOF
}
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// fixtureWants are the three injected violations, one per new analyzer.
var fixtureWants = []struct{ loc, msg string }{
	{"internal/dist/dist.go", "derives from decoded input"},
	{"internal/ctxbad/ctxbad.go", "context.Background in a library package"},
	{"internal/corpus/corpus.go", "compared against a sentinel with =="},
}

// TestVetToolFixtureViolations drives the injected violations through the
// real `go vet -vettool` protocol: each analyzer must fire, and the
// allocbound finding in dist proves a DecodedSource fact travelled from
// wire's analysis process to dist's through the .vetx files.
func TestVetToolFixtureViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and runs go vet")
	}
	bin := buildTool(t, moduleRoot(t))
	dir := writeFixtureModule(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool found nothing on the violation fixture:\n%s", out)
	}
	for _, w := range fixtureWants {
		if !strings.Contains(string(out), w.msg) || !strings.Contains(string(out), filepath.FromSlash(w.loc)) {
			t.Errorf("missing %q at %s in go vet output:\n%s", w.msg, w.loc, out)
		}
	}
}

// TestStandaloneFixtureViolations runs the same fixture module through the
// standalone driver, where facts flow through the in-process store.
func TestStandaloneFixtureViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool")
	}
	bin := buildTool(t, moduleRoot(t))
	dir := writeFixtureModule(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("standalone run found nothing on the violation fixture:\n%s", out)
	}
	for _, w := range fixtureWants {
		if !strings.Contains(string(out), w.msg) || !strings.Contains(string(out), filepath.FromSlash(w.loc)) {
			t.Errorf("missing %q at %s in standalone output:\n%s", w.msg, w.loc, out)
		}
	}
}
