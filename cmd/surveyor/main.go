// Command surveyor runs the full Surveyor pipeline over a document corpus
// (JSON lines, as produced by corpusgen or any compatible source) against
// the built-in knowledge base and prints the mined opinions.
//
// Usage:
//
//	surveyor [-rho N] [-version 1..4] [-workers N] [-top K] [-in FILE]
//	         [-stream] [-lenient] [-epochs N] [-distribute N]
//	         [-dist-retries N] [-dist-backoff DUR] [-dist-deadline DUR]
//	         [-dist-connect ADDRS | -dist-listen ADDR [-dist-heartbeat DUR]]
//	         [-cpuprofile FILE] [-memprofile FILE] [-trace FILE]
//	         [-debug-addr ADDR] [-linger DUR] [-report FILE]
//
// With no -in, a demonstration corpus is generated on the fly. -stream
// feeds the corpus through the bounded-memory streaming pipeline instead
// of loading it whole; -lenient skips and counts malformed or oversized
// corpus lines instead of aborting.
//
// -epochs N replays the in-memory corpus through the incremental miner in
// N contiguous epochs, printing per-epoch dirty-group and re-fit stats to
// stderr. The final output is bit-identical to the default batch run —
// the whole point of the incremental engine. Incompatible with -stream
// (which has its own batching).
//
// -distribute N mines the corpus with N worker processes, each re-executing
// this binary in a hidden worker mode and extracting evidence from one
// contiguous corpus shard; the coordinator merges the shipped evidence
// deltas and models the union once. Output is bit-identical to the
// single-process run. The scheduler self-heals: a crashed or hung worker's
// shard is retried on a fresh worker up to -dist-retries times, backing
// off with seeded jitter between attempts (-dist-backoff) and reclaiming
// attempts that outlive -dist-deadline. Only a shard whose whole budget
// is exhausted is lost (reported on stderr); the run continues.
// Incompatible with -stream and -epochs.
//
// -dist-connect ADDR[,ADDR...] makes -distribute dial standalone socket
// workers instead of forking children: each shard attempt is one TCP
// connection to a worker server started elsewhere with -dist-listen ADDR.
// Socket workers interleave heartbeat frames while mining (-dist-heartbeat
// sets their cadence) so the coordinator can tell a slow shard from a
// dead link, and dial failures reconnect with backoff across the listed
// endpoints. Output remains bit-identical to the single-process run.
//
// SIGINT/SIGTERM cancel the run at document granularity: the documents
// processed so far are still grouped and modelled, worker children are
// killed and reaped, the partial statistics and -report are flushed on
// the way down, and the process exits 130. A second signal kills the
// process immediately; orphaned workers notice the dead coordinator (a
// parent watch in -dist-worker mode, a peer-close watch on socket
// connections) and exit on their own.
//
// Observability: -debug-addr starts a live debug server (Prometheus
// /metrics, /progress, /trace for Perfetto, /em, /cluster, expvar, pprof);
// -linger keeps it serving after the run finishes so the final state can
// be scraped. -report writes a machine-readable JSON run report. Combined
// with -distribute, the workers run their own observability and ship it
// back as telemetry frames: /metrics grows federated surveyor_fleet_*
// series, /trace stitches every worker's spans onto its own pid track
// with skew-corrected timestamps, and /cluster shows the per-shard fleet
// view. Telemetry is write-only — mined results are bit-identical with or
// without it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/corpus"
	"repro/internal/kb"
	"repro/internal/obs"
	"repro/surveyor"
)

func main() {
	// run holds the real logic so profile writes (deferred there) happen
	// before the process exits; os.Exit here would skip defers.
	os.Exit(run())
}

func run() int {
	rho := flag.Int64("rho", 100, "minimum statements per (type, property) pair")
	queryStr := flag.String("query", "", "answer a subjective query (e.g. 'big cities') instead of dumping groups")
	version := flag.Int("version", 4, "extraction pattern version 1-4")
	workers := flag.Int("workers", 0, "extraction parallelism (0 = all cores)")
	top := flag.Int("top", 10, "entities to print per modelled group")
	in := flag.String("in", "", "input corpus (JSON lines); empty generates a demo snapshot")
	stream := flag.Bool("stream", false, "stream the corpus through the pipeline in bounded memory (requires -in)")
	lenient := flag.Bool("lenient", false, "skip and count malformed or oversized corpus lines instead of aborting")
	epochs := flag.Int("epochs", 0, "replay the corpus through the incremental miner in N contiguous epochs (0 = one batch run)")
	distribute := flag.Int("distribute", 0, "mine with N worker processes, one corpus shard each (0 = single process)")
	distWorker := flag.Bool("dist-worker", false, "serve one distributed-mining shard on stdin/stdout (internal; launched by -distribute)")
	distTelemetry := flag.Bool("dist-telemetry", false, "run worker-side observability and ship it back as a telemetry frame (internal; set by -distribute when the coordinator has a live obs sink)")
	distRetries := flag.Int("dist-retries", 3, "total worker attempts per shard before the shard is lost (with -distribute; 1 disables retry)")
	distBackoff := flag.Duration("dist-backoff", 100*time.Millisecond, "base backoff before a shard retry, doubled per attempt with seeded jitter (with -distribute)")
	distDeadline := flag.Duration("dist-deadline", 0, "per-shard attempt deadline; a worker past it is presumed hung and the shard reassigned (with -distribute; 0 = none)")
	distListen := flag.String("dist-listen", "", "serve as a standalone socket worker on this address (e.g. :7070) until interrupted")
	distConnect := flag.String("dist-connect", "", "comma-separated socket worker addresses; -distribute dials these instead of forking children")
	distHeartbeat := flag.Duration("dist-heartbeat", time.Second, "liveness heartbeat interval of a socket worker (with -dist-listen)")
	distAttempt := flag.Int("dist-attempt", 0, "which retry attempt this worker serves (internal; set by the coordinator)")
	distFlakeUntil := flag.Int("dist-flake-until", 0, "crash worker attempts below this attempt number (internal; fault injection for the retry tests)")
	seed := flag.Uint64("seed", 1, "seed for the demo snapshot")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	tracePath := flag.String("trace", "", "write a runtime execution trace to this file (go tool trace)")
	debugAddr := flag.String("debug-addr", "", "serve the live debug endpoints on this address (e.g. localhost:6060)")
	linger := flag.Duration("linger", 0, "keep the debug server up this long after the run (with -debug-addr)")
	reportPath := flag.String("report", "", "write a JSON run report to this file")
	flag.Parse()

	prof := obs.Profiling{CPUProfile: *cpuProfile, MemProfile: *memProfile, Trace: *tracePath}
	if prof.Enabled() {
		stop, err := prof.Start()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	// Telemetry sinks cost nothing when no obs flag asks for them.
	var o *obs.RunObs
	if *debugAddr != "" || *reportPath != "" {
		o = obs.New()
		o.RegisterBuildInfo()
	}
	if *debugAddr != "" {
		ds, err := obs.StartDebugServer(*debugAddr, o)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer ds.Close()
		fmt.Fprintf(os.Stderr, "debug server on http://%s/ (metrics, progress, trace, em, pprof)\n", ds.Addr)
	}

	// SIGINT/SIGTERM cancel the mining run. The first signal cancels the
	// context — worker children are killed through it, socket connections
	// close, and the partial result is still reported on the way down. A
	// second signal kills the process immediately: children notice the
	// dead coordinator on their own (parent watch, broken pipes,
	// peer-close watch) instead of surviving as orphans. stopSignals
	// restores default signal handling after mining, so a signal during
	// -linger also kills the process outright.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		cancel()
		<-sigc
		os.Exit(130)
	}()
	stopSignals := func() { signal.Stop(sigc) }
	defer stopSignals()

	// Hidden worker mode: serve one distributed-mining shard on
	// stdin/stdout and exit. A terminal SIGINT reaches the whole process
	// group, so the worker's context cancels alongside the coordinator's;
	// the all-or-nothing shard commit turns that into a cleanly lost shard.
	if *distWorker {
		// Fault injection for the retry suite: attempts below the flake
		// threshold crash before speaking the protocol, like a worker box
		// dying mid-job. The coordinator's scheduler must heal them.
		if *distFlakeUntil > 0 && *distAttempt < *distFlakeUntil {
			fmt.Fprintf(os.Stderr, "injected flake: attempt %d < %d\n", *distAttempt, *distFlakeUntil)
			return 3
		}
		// A worker whose coordinator died a hard death (second SIGINT,
		// kill -9) is reparented to init; stop mining for nobody.
		go watchParent(cancel)
		// -dist-telemetry gives the worker its own observability run; the
		// frame it ships federates into the coordinator's /metrics, /trace,
		// and /cluster. Without it the worker is silent (the frame is
		// optional, so the two modes interoperate freely).
		var wo *obs.RunObs
		if *distTelemetry {
			wo = obs.New()
			wo.RegisterBuildInfo()
		}
		err := surveyor.NewSystemWithBuiltinKB(*seed).ServeWorker(ctx, os.Stdin, os.Stdout,
			surveyor.Config{Workers: *workers, PatternVersion: *version, Obs: wo})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	// Standalone socket worker: serve shard attempts over TCP until
	// interrupted. Coordinators reach it with -distribute N -dist-connect.
	if *distListen != "" {
		var wo *obs.RunObs
		if *distTelemetry {
			wo = obs.New()
			wo.RegisterBuildInfo()
		}
		ln, err := net.Listen("tcp", *distListen)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "socket worker listening on %s\n", ln.Addr())
		err = surveyor.NewSystemWithBuiltinKB(*seed).ServeSocketWorker(ctx, ln,
			surveyor.Config{Workers: *workers, PatternVersion: *version, Obs: wo},
			surveyor.SocketWorkerOptions{Heartbeat: *distHeartbeat, ErrLog: os.Stderr})
		if err != nil && !errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	if *distribute > 0 && (*stream || *epochs > 0) {
		fmt.Fprintln(os.Stderr, "-distribute shards the in-memory corpus; it cannot be combined with -stream or -epochs")
		return 1
	}
	if *distConnect != "" && *distribute <= 0 {
		fmt.Fprintln(os.Stderr, "-dist-connect needs -distribute N to say how many shards to dial out")
		return 1
	}

	if *stream && *in == "" {
		fmt.Fprintln(os.Stderr, "-stream requires -in (the demo snapshot is generated in memory)")
		return 1
	}
	if *epochs > 0 && *stream {
		fmt.Fprintln(os.Stderr, "-epochs applies to in-memory corpora; it cannot be combined with -stream")
		return 1
	}

	sys := surveyor.NewSystemWithBuiltinKB(*seed)
	cfg := surveyor.Config{
		Rho:            *rho,
		PatternVersion: *version,
		Workers:        *workers,
		Obs:            o,
	}

	// The distributed coordinator re-executes this binary in worker mode
	// (or dials out to -dist-connect socket workers); the worker flags
	// reconstruct the same knowledge base and extraction configuration.
	distOpts := surveyor.DistributedOptions{
		Workers:       *distribute,
		Retries:       *distRetries,
		RetryBackoff:  *distBackoff,
		ShardDeadline: *distDeadline,
		Seed:          *seed,
		Stderr:        os.Stderr,
	}
	if *distConnect != "" {
		distOpts.Connect = strings.Split(*distConnect, ",")
	} else if *distribute > 0 {
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		workerCmd := []string{exe, "-dist-worker",
			"-seed", strconv.FormatUint(*seed, 10),
			"-version", strconv.Itoa(*version),
			"-workers", strconv.Itoa(*workers)}
		if o != nil {
			workerCmd = append(workerCmd, "-dist-telemetry")
		}
		if *distFlakeUntil > 0 {
			workerCmd = append(workerCmd, "-dist-flake-until", strconv.Itoa(*distFlakeUntil))
		}
		distOpts.Command = workerCmd
		// Tell each launched worker which retry attempt it serves, so the
		// flake injector (and any future attempt-aware behavior) can key
		// off it.
		distOpts.WorkerAttempt = func(_, attempt int) []string {
			return []string{"-dist-attempt", strconv.Itoa(attempt)}
		}
	}

	var res *surveyor.Result
	var mineErr error
	var loadSkipped int64
	switch {
	case *stream:
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		res, mineErr = sys.MineJSONL(ctx, f, surveyor.StreamOptions{Lenient: *lenient}, cfg)
		f.Close()
	case *in != "":
		var docs []surveyor.Document
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		it := corpus.NewIterator(f, corpus.IteratorConfig{Lenient: *lenient})
		for it.Next() {
			d := it.Doc()
			docs = append(docs, surveyor.Document{URL: d.URL, Domain: d.Domain, Text: d.Text})
		}
		f.Close()
		if err := it.Err(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if loadSkipped = it.Stats().Skipped(); loadSkipped > 0 {
			fmt.Fprintf(os.Stderr, "skipped %d malformed or oversized corpus lines\n", loadSkipped)
		}
		res, mineErr = mine(ctx, sys, docs, cfg, *epochs, distOpts)
	default:
		var docs []surveyor.Document
		base := kb.Default(*seed)
		snap := corpus.NewGenerator(base, corpus.Table2Specs(),
			corpus.Config{Seed: *seed, Scale: 1}).Generate()
		for _, d := range snap.Documents {
			docs = append(docs, surveyor.Document{URL: d.URL, Domain: d.Domain, Text: d.Text})
		}
		fmt.Fprintf(os.Stderr, "generated demo snapshot: %d documents\n", len(docs))
		res, mineErr = mine(ctx, sys, docs, cfg, *epochs, distOpts)
	}
	stopSignals()

	// A partial run (signal, corpus read failure) still carries a
	// consistent result: report it, flush everything, exit non-zero.
	exit := 0
	partialCause := ""
	if mineErr != nil {
		var pe *surveyor.PartialError
		if !errors.As(mineErr, &pe) {
			fmt.Fprintln(os.Stderr, mineErr)
			return 1
		}
		partialCause = pe.Err.Error()
		if errors.Is(mineErr, context.Canceled) {
			exit = 130
		} else {
			exit = 1
		}
		fmt.Fprintf(os.Stderr, "run stopped early (%s) — reporting the partial result\n", partialCause)
	}

	stats := res.Stats()
	fmt.Fprintln(os.Stderr, stats.String())
	if q := res.Quarantined(); len(q) > 0 {
		fmt.Fprintf(os.Stderr, "quarantined %d documents (first: doc %d: %s)\n", len(q), q[0].Doc, q[0].Reason)
	}

	if *reportPath != "" {
		if err := writeReport(*reportPath, stats, o, *workers, *rho, *version, loadSkipped, partialCause); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "run report written to %s\n", *reportPath)
	}
	if *debugAddr != "" && *linger > 0 {
		fmt.Fprintf(os.Stderr, "lingering %s for scrapes of the final state\n", *linger)
		time.Sleep(*linger)
	}

	if *queryStr != "" {
		answers, err := res.Query(*queryStr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		for _, a := range answers {
			fmt.Printf("%s %-24s p=%.3f (+%d/-%d)\n", "+", a.Entity, a.Probability, a.Pos, a.Neg)
		}
		return exit
	}

	for _, g := range res.Groups() {
		fmt.Printf("\n%s %s  (pA=%.2f np+S=%.1f np-S=%.1f)\n",
			g.Property, g.Type, g.PA, g.NpPlus, g.NpMinus)
		ents := append([]surveyor.EntityOpinion(nil), g.Entities...)
		sort.Slice(ents, func(a, b int) bool {
			return ents[a].Probability > ents[b].Probability
		})
		k := *top
		if k > len(ents) {
			k = len(ents)
		}
		for _, eo := range ents[:k] {
			fmt.Printf("  %s %-24s p=%.3f  (+%d/-%d)\n",
				eo.Opinion, eo.Entity, eo.Probability, eo.Pos, eo.Neg)
		}
	}
	return exit
}

// mine runs an in-memory corpus as one batch (the default), across
// distributed workers (child processes or socket workers, with the
// self-healing retry scheduler), or through the incremental miner in
// epochs contiguous epochs (printing per-epoch stats). All paths produce
// bit-identical results.
func mine(ctx context.Context, sys *surveyor.System, docs []surveyor.Document, cfg surveyor.Config, epochs int, distOpts surveyor.DistributedOptions) (*surveyor.Result, error) {
	if distOpts.Workers > 0 {
		res, failures, err := sys.MineDistributed(ctx, docs, distOpts, cfg)
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "shard %d lost (%d docs, %d attempts): %v\n", f.Shard, f.Docs, f.Attempts, f.Err)
		}
		return res, err
	}
	if epochs <= 0 {
		return sys.MineContext(ctx, docs, cfg)
	}
	m := sys.MineIncremental(cfg)
	for e := 0; e < epochs; e++ {
		lo, hi := len(docs)*e/epochs, len(docs)*(e+1)/epochs
		st, err := m.Epoch(ctx, docs[lo:hi])
		if err != nil {
			// An interrupted epoch was discarded whole; the snapshot is the
			// consistent result over the epochs that committed.
			snap := m.Snapshot()
			return snap, &surveyor.PartialError{
				Result:    snap,
				Documents: snap.Stats().Documents,
				Err:       err,
			}
		}
		fmt.Fprintf(os.Stderr,
			"epoch %d/%d: docs=%d statements=%d dirty=%d refit=%d/%d tuples=%d (%dms)\n",
			st.Epoch+1, epochs, st.Documents, st.Statements, st.DirtyGroups,
			st.RefitGroups, st.ModelledGroups, st.RefitTuples,
			st.Duration.Milliseconds())
	}
	return m.Snapshot(), nil
}

// watchParent cancels the worker's context once the process has been
// reparented to init — its coordinator died a hard death (second SIGINT,
// kill -9) without killing its children, and mining for a dead
// coordinator would leak a full-CPU orphan.
func watchParent(cancel context.CancelFunc) {
	for os.Getppid() != 1 {
		time.Sleep(500 * time.Millisecond)
	}
	cancel()
}

// writeReport fills an obs.Report from the run statistics and telemetry
// and writes it as indented JSON.
func writeReport(path string, stats surveyor.Stats, o *obs.RunObs, workers int, rho int64, version int, loadSkipped int64, partialCause string) error {
	rep := obs.NewReport()
	rep.Workers = workers
	rep.Rho = rho
	rep.Version = version
	rep.Documents = stats.Documents
	rep.Sentences = stats.Sentences
	rep.Statements = stats.Statements
	rep.DistinctPairs = stats.DistinctPairs
	rep.PairsBeforeFilter = stats.PairsBeforeFilter
	rep.Groups = stats.ModelledGroups
	rep.Opinions = stats.OpinionsProduced
	rep.QuarantinedDocs = int64(stats.QuarantinedDocs)
	rep.SkippedLines = stats.SkippedLines + loadSkipped
	rep.Partial = partialCause != ""
	rep.PartialCause = partialCause
	rep.TimingsMillis["extract"] = stats.ExtractionMillis
	rep.TimingsMillis["group"] = stats.GroupingMillis
	rep.TimingsMillis["em"] = stats.EMMillis
	rep.TimingsMillis["index"] = stats.IndexMillis
	rep.TimingsMillis["total"] = stats.TotalMillis
	rep.Attach(o)

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
