// Command surveyor runs the full Surveyor pipeline over a document corpus
// (JSON lines, as produced by corpusgen or any compatible source) against
// the built-in knowledge base and prints the mined opinions.
//
// Usage:
//
//	surveyor [-rho N] [-version 1..4] [-workers N] [-top K] [-in FILE]
//	         [-cpuprofile FILE] [-memprofile FILE]
//
// With no -in, a demonstration corpus is generated on the fly.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"

	"repro/internal/corpus"
	"repro/internal/kb"
	"repro/surveyor"
)

func main() {
	// run holds the real logic so profile writes (deferred there) happen
	// before the process exits; os.Exit here would skip defers.
	os.Exit(run())
}

func run() int {
	rho := flag.Int64("rho", 100, "minimum statements per (type, property) pair")
	queryStr := flag.String("query", "", "answer a subjective query (e.g. 'big cities') instead of dumping groups")
	version := flag.Int("version", 4, "extraction pattern version 1-4")
	workers := flag.Int("workers", 0, "extraction parallelism (0 = all cores)")
	top := flag.Int("top", 10, "entities to print per modelled group")
	in := flag.String("in", "", "input corpus (JSON lines); empty generates a demo snapshot")
	seed := flag.Uint64("seed", 1, "seed for the demo snapshot")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	sys := surveyor.NewSystemWithBuiltinKB(*seed)

	var docs []surveyor.Document
	if *in == "" {
		base := kb.Default(*seed)
		snap := corpus.NewGenerator(base, corpus.Table2Specs(),
			corpus.Config{Seed: *seed, Scale: 1}).Generate()
		for _, d := range snap.Documents {
			docs = append(docs, surveyor.Document{URL: d.URL, Domain: d.Domain, Text: d.Text})
		}
		fmt.Fprintf(os.Stderr, "generated demo snapshot: %d documents\n", len(docs))
	} else {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		loaded, err := corpus.ReadJSONL(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		for _, d := range loaded {
			docs = append(docs, surveyor.Document{URL: d.URL, Domain: d.Domain, Text: d.Text})
		}
	}

	res := sys.Mine(docs, surveyor.Config{
		Rho:            *rho,
		PatternVersion: *version,
		Workers:        *workers,
	})
	fmt.Fprintln(os.Stderr, res.Stats().String())

	if *queryStr != "" {
		answers, err := res.Query(*queryStr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		for _, a := range answers {
			fmt.Printf("%s %-24s p=%.3f (+%d/-%d)\n", "+", a.Entity, a.Probability, a.Pos, a.Neg)
		}
		return 0
	}

	for _, g := range res.Groups() {
		fmt.Printf("\n%s %s  (pA=%.2f np+S=%.1f np-S=%.1f)\n",
			g.Property, g.Type, g.PA, g.NpPlus, g.NpMinus)
		ents := append([]surveyor.EntityOpinion(nil), g.Entities...)
		sort.Slice(ents, func(a, b int) bool {
			return ents[a].Probability > ents[b].Probability
		})
		k := *top
		if k > len(ents) {
			k = len(ents)
		}
		for _, eo := range ents[:k] {
			fmt.Printf("  %s %-24s p=%.3f  (+%d/-%d)\n",
				eo.Opinion, eo.Entity, eo.Probability, eo.Pos, eo.Neg)
		}
	}
	return 0
}
