// Command corpusgen generates a synthetic annotated web snapshot (the
// reproduction's substitute for the paper's 40 TB crawl) and writes it as
// JSON lines, one document per line.
//
// Usage:
//
//	corpusgen [-seed N] [-scale F] [-world eval|fig3|appendixA] [-out FILE]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/corpus"
	"repro/internal/kb"
)

func main() {
	seed := flag.Uint64("seed", 1, "deterministic seed")
	scale := flag.Float64("scale", 1, "corpus volume multiplier")
	world := flag.String("world", "eval", "world preset: eval, fig3, appendixA")
	out := flag.String("out", "-", "output file (JSON lines), - for stdout")
	flag.Parse()

	var base *kb.KB
	var specs []corpus.Spec
	switch *world {
	case "eval":
		base = kb.Default(*seed)
		specs = corpus.Table2Specs()
	case "fig3":
		b := kb.NewBuilder(*seed)
		b.CalifornianCities(461)
		base = b.KB()
		specs = []corpus.Spec{corpus.Figure3Spec()}
	case "appendixA":
		b := kb.NewBuilder(*seed)
		b.Countries()
		b.SwissLakes(45)
		b.BritishMountains(55)
		base = b.KB()
		specs = corpus.AppendixASpecs()
	default:
		fmt.Fprintf(os.Stderr, "unknown world %q\n", *world)
		os.Exit(2)
	}

	snap := corpus.NewGenerator(base, specs, corpus.Config{Seed: *seed, Scale: *scale}).Generate()

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := corpus.WriteJSONL(w, snap.Documents); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %d documents (%d evidence sentences) for %d specs\n",
		len(snap.Documents), snap.Statements, len(specs))
}
