// Command experiments regenerates every table and figure of the paper
// "Mining Subjective Properties on the Web" (SIGMOD 2015) on the synthetic
// web snapshot.
//
// Usage:
//
//	experiments [flags] [experiment...]
//
// Experiments: table1 table3 table4 table5 fig3 fig6 fig9 fig10 fig11
// fig12 fig13 scale antonyms futurework all (default: all).
//
// Flags:
//
//	-seed N    deterministic seed (default 1)
//	-scale F   corpus volume multiplier (default 1)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	seed := flag.Uint64("seed", 1, "deterministic seed")
	scale := flag.Float64("scale", 1, "corpus volume multiplier")
	flag.Parse()

	known := map[string]bool{
		"all": true, "table1": true, "table3": true, "table4": true,
		"table5": true, "fig3": true, "fig6": true, "fig9": true,
		"fig10": true, "fig11": true, "fig12": true, "fig13": true,
		"scale": true, "antonyms": true, "futurework": true,
	}
	wanted := flag.Args()
	if len(wanted) == 0 {
		wanted = []string{"all"}
	}
	want := map[string]bool{}
	for _, w := range wanted {
		if !known[w] {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; known: table1 table3 table4 table5 fig3 fig6 fig9 fig10 fig11 fig12 fig13 scale antonyms futurework all\n", w)
			os.Exit(2)
		}
		want[w] = true
	}
	on := func(name string) bool { return want["all"] || want[name] }

	cfg := experiments.WorldConfig{Seed: *seed, Scale: *scale}

	// The Section-7 experiments share one world; build it lazily.
	var world *experiments.World
	getWorld := func() *experiments.World {
		if world == nil {
			fmt.Fprintf(os.Stderr, "building evaluation world (seed=%d scale=%g)...\n", *seed, *scale)
			world = experiments.BuildEvalWorld(cfg)
		}
		return world
	}

	if on("table1") {
		section("Table 1 — example extractions")
		fmt.Print(experiments.FormatTable1(experiments.Table1()))
	}
	if on("fig6") {
		section("Figure 6 — count distributions under Example-3 parameters")
		fmt.Print(experiments.Fig6().Format())
	}
	if on("fig3") {
		section("Figure 3 — big Californian cities: majority vote vs model")
		fmt.Print(experiments.Fig3(cfg).Format())
	}
	if on("fig13") {
		section("Figure 13 — wealthy countries, big lakes, high mountains")
		for _, r := range experiments.Fig13(cfg) {
			fmt.Print(r.Format())
			fmt.Println()
		}
	}
	if on("scale") {
		section("Section 7.1 — pipeline scale statistics")
		fmt.Print(experiments.Scale(getWorld()).Format())
	}
	if on("fig9") {
		section("Figure 9 — extraction statistics percentiles")
		fmt.Print(experiments.Fig9(getWorld(), int64(40**scale)).Format())
	}
	if on("fig10") {
		section("Figure 10 — cute animals: paper AMT votes vs simulated panel")
		fmt.Print(experiments.FormatFig10(experiments.Fig10(*seed)))
	}
	if on("fig11") {
		section("Figure 11 — worker agreement distribution")
		fmt.Print(experiments.Fig11(getWorld()).Format())
	}
	if on("table3") {
		section("Table 3 — method comparison on 500 curated test cases")
		fmt.Print(experiments.Table3(getWorld()).Format())
	}
	if on("fig12") {
		section("Figure 12 — precision/coverage vs worker agreement")
		fmt.Print(experiments.Fig12(getWorld()).Format())
	}
	if on("table4") {
		section("Table 4 — extraction pattern versions (Appendix B)")
		fmt.Print(experiments.FormatTable4(experiments.Table4(getWorld(), int64(40**scale))))
	}
	if on("table5") {
		section("Table 5 — random-sample comparison (Appendix D)")
		t5 := experiments.Table5Config{Seed: *seed, Scale: *scale}
		fmt.Print(experiments.Table5(t5).Format())
	}
	if on("antonyms") {
		section("Section 4 ablation — antonym folding vs ignoring")
		fmt.Print(experiments.FormatAntonymAblation(experiments.AntonymAblation(cfg, 0.35)))
	}
	if on("futurework") {
		section("Section 9 outlook — learned subjective-to-objective bounds")
		fmt.Print(experiments.FormatFutureWork(experiments.FutureWork(cfg)))
	}
}

func section(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}
