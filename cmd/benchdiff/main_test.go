package main

import (
	"os"
	"testing"
)

func TestParseLine(t *testing.T) {
	name, s, ok := parseLine("BenchmarkTokenize-8   \t 12345\t  987 ns/op\t  64 B/op\t  2 allocs/op")
	if !ok || name != "Tokenize" {
		t.Fatalf("parseLine failed: ok=%v name=%q", ok, name)
	}
	if s.NsOp != 987 || s.BOp != 64 || s.AllocsOp != 2 {
		t.Fatalf("wrong sample: %+v", s)
	}

	name, s, ok = parseLine("BenchmarkPipelinePhases-4 100 36897376 ns/op 1386 docs/run 10283033 B/op 146113 allocs/op")
	if !ok || name != "PipelinePhases" {
		t.Fatalf("parseLine failed: ok=%v name=%q", ok, name)
	}
	if s.Metrics["docs/run"] != 1386 {
		t.Fatalf("custom metric lost: %+v", s)
	}

	for _, junk := range []string{"", "ok  \trepro\t1.2s", "PASS", "goos: linux", "BenchmarkX-8 oops ns/op"} {
		if _, _, ok := parseLine(junk); ok {
			t.Fatalf("parseLine accepted %q", junk)
		}
	}
}

func TestDerive(t *testing.T) {
	samples := map[string]Sample{
		"ExtractionThroughput": {NsOp: 4000},
		"PipelinePhases":       {NsOp: 2e9, Metrics: map[string]float64{"docs/run": 1000}},
	}
	derive(samples)
	if got := samples["ExtractionThroughput"].Metrics["sentences/sec"]; got != 250000 {
		t.Fatalf("sentences/sec = %v, want 250000", got)
	}
	if got := samples["PipelinePhases"].Metrics["docs/sec"]; got != 500 {
		t.Fatalf("docs/sec = %v, want 500", got)
	}
}

// TestDiffGate pins the acceptance criterion: a >20% ns/op slowdown
// counts as a regression, anything inside the tolerance does not, and
// benchmarks missing from the baseline never gate.
func TestDiffGate(t *testing.T) {
	base := Baseline{Benchmarks: map[string]Sample{
		"Fast":  {NsOp: 100},
		"Slow":  {NsOp: 100},
		"Equal": {NsOp: 100},
	}}
	cur := map[string]Sample{
		"Fast":  {NsOp: 70},  // improved
		"Slow":  {NsOp: 125}, // beyond 20%
		"Equal": {NsOp: 115}, // inside tolerance
		"New":   {NsOp: 999}, // not in baseline
	}
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	if got := diff(null, base, cur, 0.20); got != 1 {
		t.Fatalf("diff found %d regressions, want exactly 1", got)
	}
	if got := diff(null, base, cur, 0.30); got != 0 {
		t.Fatalf("at 30%% tolerance diff found %d regressions, want 0", got)
	}
}
