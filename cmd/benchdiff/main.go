// Benchdiff is the benchmark-regression gate: it runs a fast subset of
// the repo's benchmarks, snapshots ns/op, allocations and derived
// throughput into a JSON baseline, and on later runs diffs against that
// baseline, exiting non-zero when any gated benchmark slows down by more
// than the tolerance.
//
//	go run ./cmd/benchdiff -update   # (re)write BENCH_pipeline.json
//	go run ./cmd/benchdiff           # diff against it, gate at 20%
//	go run ./cmd/benchdiff -gate=false  # report only (CI on shared runners)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// defaultBench is the fast, low-variance subset: the end-to-end pipeline,
// the NLP front end, and the hot inner loops. The table/figure
// reproduction benches are excluded — they are experiments, not gates.
const defaultBench = "PipelinePhases|ExtractionThroughput|Tokenize$|^BenchmarkParse$|Posterior$|EvidenceStoreAdd|GroupingThroughput|StoreMergeThroughput|ObsOverhead|IncrementalRefit|WireCodec|DistributedMine"

// obsTolerance caps how much the observability layer may slow the
// pipeline when a sink is attached: ObsOverhead/on is gated against
// ObsOverhead/off from the same run (a paired comparison, so it holds on
// a noisy machine where the absolute baseline would not).
const obsTolerance = 0.02

// allocGated lists the benchmarks whose allocs/op is gated alongside
// ns/op: the hot paths whose allocation discipline the scratch-reuse
// work bought, where a creeping alloc count is a regression even when
// wall time hides it on an idle machine.
var allocGated = map[string]bool{
	"PipelinePhases":       true,
	"Tokenize":             true,
	"ExtractionThroughput": true,
	"WireCodec/encode":     true,
	"WireCodec/decode":     true,
}

// Sample is one benchmark's recorded performance.
type Sample struct {
	NsOp     float64            `json:"ns_op"`
	BOp      float64            `json:"b_op,omitempty"`
	AllocsOp float64            `json:"allocs_op,omitempty"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
}

// Baseline is the committed snapshot format.
type Baseline struct {
	Go         string            `json:"go"`
	Created    string            `json:"created"`
	Bench      string            `json:"bench"`
	BenchTime  string            `json:"benchtime"`
	Count      int               `json:"count"`
	Benchmarks map[string]Sample `json:"benchmarks"`
}

func main() {
	var (
		bench     = flag.String("bench", defaultBench, "benchmark regex passed to go test")
		benchTime = flag.String("benchtime", "300ms", "per-benchmark measuring time")
		count     = flag.Int("count", 5, "runs per benchmark; the fastest is kept")
		pkg       = flag.String("pkg", ".", "package holding the benchmarks")
		baseline  = flag.String("baseline", "BENCH_pipeline.json", "baseline file to diff against")
		update    = flag.Bool("update", false, "rewrite the baseline instead of diffing")
		tolerance = flag.Float64("tolerance", 0.20, "allowed relative ns/op regression")
		gate      = flag.Bool("gate", true, "exit non-zero on regressions beyond the tolerance")
	)
	flag.Parse()

	cur, means, err := runBenchmarks(*bench, *benchTime, *count, *pkg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if len(cur) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: regex %q matched no benchmarks\n", *bench)
		os.Exit(2)
	}

	if *update {
		b := Baseline{
			Go:         runtime.Version(),
			Created:    time.Now().UTC().Format(time.RFC3339),
			Bench:      *bench,
			BenchTime:  *benchTime,
			Count:      *count,
			Benchmarks: cur,
		}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*baseline, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		fmt.Printf("wrote %s with %d benchmarks\n", *baseline, len(cur))
		return
	}

	data, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: no baseline: %v (run with -update to create one)\n", err)
		os.Exit(2)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: corrupt baseline %s: %v\n", *baseline, err)
		os.Exit(2)
	}

	regressions := diff(os.Stdout, base, cur, *tolerance)
	regressions += obsOverheadGate(os.Stdout, means)
	if regressions > 0 && *gate {
		fmt.Printf("\n%d benchmark(s) regressed beyond %.0f%%\n", regressions, *tolerance*100)
		os.Exit(1)
	}
	if regressions > 0 {
		fmt.Printf("\n%d benchmark(s) regressed beyond %.0f%% (gate disabled)\n", regressions, *tolerance*100)
	}
}

// runBenchmarks shells out to go test and keeps, per benchmark, the
// fastest of count runs (minimum ns/op) — the standard way to reject
// scheduler noise on a shared machine.
func runBenchmarks(bench, benchTime string, count int, pkg string) (map[string]Sample, map[string]float64, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", bench, "-benchtime", benchTime,
		"-count", strconv.Itoa(count), "-benchmem", pkg)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, nil, fmt.Errorf("go test -bench: %v\n%s", err, out)
	}
	samples := map[string]Sample{}
	sums := map[string]float64{}
	runs := map[string]int{}
	for _, line := range strings.Split(string(out), "\n") {
		name, s, ok := parseLine(line)
		if !ok {
			continue
		}
		sums[name] += s.NsOp
		runs[name]++
		if prev, seen := samples[name]; !seen || s.NsOp < prev.NsOp {
			samples[name] = s
		}
	}
	// Mean ns/op across all count runs: a lower-variance estimator than
	// min-of-count, used for the paired obs-overhead gate where a few
	// percent of window-to-window noise would swamp a 2% tolerance.
	means := map[string]float64{}
	for name, sum := range sums {
		means[name] = sum / float64(runs[name])
	}
	derive(samples)
	return samples, means, nil
}

// parseLine decodes one `go test -bench` result line:
//
//	BenchmarkTokenize-8   12345   987 ns/op   64 B/op   2 allocs/op
func parseLine(line string) (string, Sample, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", Sample{}, false
	}
	name := strings.TrimPrefix(f[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		name = name[:i] // strip the GOMAXPROCS suffix
	}
	s := Sample{Metrics: map[string]float64{}}
	got := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return "", Sample{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			s.NsOp, got = v, true
		case "B/op":
			s.BOp = v
		case "allocs/op":
			s.AllocsOp = v
		default:
			s.Metrics[unit] = v
		}
	}
	if len(s.Metrics) == 0 {
		s.Metrics = nil
	}
	return name, s, got
}

// derive adds throughput metrics computed from ns/op: sentences (and so
// statements) processed per second for the front-end benchmark, documents
// per second for the end-to-end pipeline.
func derive(samples map[string]Sample) {
	if s, ok := samples["ExtractionThroughput"]; ok && s.NsOp > 0 {
		if s.Metrics == nil {
			s.Metrics = map[string]float64{}
		}
		s.Metrics["sentences/sec"] = 1e9 / s.NsOp
		samples["ExtractionThroughput"] = s
	}
	if s, ok := samples["PipelinePhases"]; ok && s.NsOp > 0 {
		if docs := s.Metrics["docs/run"]; docs > 0 {
			s.Metrics["docs/sec"] = docs * 1e9 / s.NsOp
			samples["PipelinePhases"] = s
		}
	}
	// Distribution speedup: the N1/N4 wall-clock ratio of the distributed
	// miner. ~1 on a single-core runner; ≥2 expected with 4 idle cores.
	if n1, ok1 := samples["DistributedMine/N1"]; ok1 {
		if n4, ok4 := samples["DistributedMine/N4"]; ok4 && n4.NsOp > 0 {
			if n4.Metrics == nil {
				n4.Metrics = map[string]float64{}
			}
			n4.Metrics["speedup-vs-1proc"] = n1.NsOp / n4.NsOp
			samples["DistributedMine/N4"] = n4
		}
	}
}

// diff prints the comparison table and returns the number of gated
// regressions.
func diff(w *os.File, base Baseline, cur map[string]Sample, tol float64) int {
	names := make([]string, 0, len(cur))
	for n := range cur {
		names = append(names, n)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "baseline %s (%s, %s)\n\n", base.Created, base.Go, base.BenchTime)
	fmt.Fprintf(w, "%-24s %14s %14s %8s %8s\n", "benchmark", "base ns/op", "now ns/op", "delta", "allocs")
	regressions := 0
	for _, n := range names {
		c := cur[n]
		b, ok := base.Benchmarks[n]
		if !ok || b.NsOp == 0 {
			fmt.Fprintf(w, "%-24s %14s %14.0f %8s %8.0f  (not in baseline)\n", n, "-", c.NsOp, "-", c.AllocsOp)
			continue
		}
		delta := (c.NsOp - b.NsOp) / b.NsOp
		status := ""
		if delta > tol {
			status = "  REGRESSION"
			regressions++
		} else if delta < -tol {
			status = "  improved"
		}
		if allocGated[n] && b.AllocsOp > 0 {
			if allocDelta := (c.AllocsOp - b.AllocsOp) / b.AllocsOp; allocDelta > tol {
				status += fmt.Sprintf("  ALLOC REGRESSION (%+.1f%%)", allocDelta*100)
				regressions++
			}
		}
		fmt.Fprintf(w, "%-24s %14.0f %14.0f %+7.1f%% %8.0f%s\n", n, b.NsOp, c.NsOp, delta*100, c.AllocsOp, status)
	}
	for n := range base.Benchmarks {
		if _, ok := cur[n]; !ok {
			fmt.Fprintf(w, "%-24s  present in baseline but not measured\n", n)
		}
	}
	return regressions
}

// obsOverheadGate compares each on/off observability pair from the
// current run, on mean ns/op across the count runs: the pipeline with
// live sinks may cost at most obsTolerance over the same pipeline with
// none. ObsOverhead gates the single-process path; DistObsOverhead gates
// the distributed path (worker telemetry frames, coordinator
// federation). Returns the number of breached pairs; an unmeasured pair
// (e.g. under a custom -bench regex) is skipped, not breached.
func obsOverheadGate(w *os.File, means map[string]float64) int {
	breached := 0
	for _, pair := range []string{"ObsOverhead", "DistObsOverhead"} {
		on, okOn := means[pair+"/on"]
		off, okOff := means[pair+"/off"]
		if !okOn || !okOff || off == 0 {
			continue
		}
		delta := (on - off) / off
		status := "ok"
		if delta > obsTolerance {
			status = "OBS OVERHEAD REGRESSION"
			breached++
		}
		fmt.Fprintf(w, "\n%s (on vs off, same run): %+.2f%% (limit %+.0f%%)  %s\n",
			pair, delta*100, obsTolerance*100, status)
	}
	return breached
}
